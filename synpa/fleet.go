// Fleet-scale simulation: the public surface of internal/fleet. A System
// can run an open-system arrival stream across a whole cluster of
// identical machines — cluster-level dispatch choosing the machine, the
// per-machine placement policy choosing the threads — with streaming
// metric aggregation whose memory is O(machines + classes + in-flight
// jobs), independent of how many jobs pass through.
package synpa

import (
	"fmt"

	"synpa/internal/fleet"
	"synpa/internal/machine"
	"synpa/internal/workload"
)

// TraceStream yields trace entries in arrival order; the fleet consumes
// arrivals lazily, so a stream can be generated on the fly and never
// materialised.
type TraceStream = workload.TraceStream

// StreamTrace adapts a materialised Trace into a stream (entries are
// yielded in arrival order; the trace is not modified).
func StreamTrace(t Trace) TraceStream { return workload.StreamTrace(t) }

// PoissonStream is the lazy equivalent of PoissonTrace: the identical
// arrival sequence for identical parameters, in O(1) memory.
func PoissonStream(name string, seed uint64, pool []string, n int, meanGapCycles, work float64) TraceStream {
	return workload.PoissonStream(name, seed, pool, n, meanGapCycles, work)
}

// CollectTrace materialises a stream into a Trace (max 0 = no bound) —
// the bridge from the fleet's streaming sources back to the closed-system
// RunDynamic API.
func CollectTrace(ts TraceStream, max int) Trace { return workload.Collect(ts, max) }

// PoissonStreamMixed is the lazy equivalent of PoissonTraceMixed.
func PoissonStreamMixed(name string, seed uint64, pool []string, n int, meanGapCycles, work float64, mix []ClassShare) TraceStream {
	return workload.PoissonStreamMixed(name, seed, pool, n, meanGapCycles, work, mix)
}

// Fleet dispatch-policy names.
const (
	DispatchRoundRobin   = fleet.DispatchRoundRobin
	DispatchLeastLoaded  = fleet.DispatchLeastLoaded
	DispatchInterference = fleet.DispatchInterference
)

// FleetDispatchers lists the valid dispatch-policy names.
func FleetDispatchers() []string { return fleet.Dispatchers() }

// FleetConfig describes a cluster run on top of a System's machine
// configuration.
type FleetConfig struct {
	// Machines is the cluster size (every machine uses the System's
	// configuration).
	Machines int
	// Dispatch names the cluster-level dispatch policy: "round-robin",
	// "least-loaded" (default) or "interference".
	Dispatch string
	// Model is the trained interference model; required by interference
	// dispatch, which characterises each application by its isolated
	// category fractions and sends arrivals where the model predicts the
	// least mutual degradation.
	Model *Model
	// NewPolicy builds machine i's placement policy; policies hold
	// per-machine state, so every machine gets its own instance.
	NewPolicy func(i int) Policy
	// MaxCycles bounds the run (0 = the machine default). Arrivals at or
	// beyond the bound are never dispatched (FleetReport.Truncated).
	MaxCycles uint64
	// SharedCache, when non-nil, is installed into every policy that
	// supports it (the SYNPA policy does): one concurrent prediction memo
	// warms across the whole fleet instead of per machine. Bit-identical
	// by construction; see NewSharedPredCache.
	SharedCache *SharedPredCache
	// SketchAlpha is the relative accuracy of the streaming quantile
	// sketches (0 = the stats package default, 0.5%).
	SketchAlpha float64
}

// FleetReport is the streaming-aggregated outcome of a cluster run.
type FleetReport = fleet.Report

// FleetClassReport is one priority class's fleet metrics.
type FleetClassReport = fleet.ClassReport

// RunFleet executes an arrival stream across a cluster: each job is
// dispatched to a machine as it arrives, queues under the System's
// admission discipline, is placed by that machine's policy and departs on
// completion. Results are bit-identical at every worker count (the
// SYNPA_WORKERS override applies fleet-wide), and a single-machine fleet
// reproduces RunDynamic exactly.
func (s *System) RunFleet(cfg FleetConfig, stream TraceStream) (*FleetReport, error) {
	if stream == nil {
		return nil, fmt.Errorf("synpa: nil trace stream")
	}
	if cfg.NewPolicy == nil {
		return nil, fmt.Errorf("synpa: nil placement-policy factory")
	}
	// Only interference dispatch needs per-application category
	// characterisation; skip the extra isolated-counter work otherwise.
	width := 0
	if cfg.Dispatch == fleet.DispatchInterference {
		width = s.machCfg.Core.DispatchWidth
	}
	src := fleet.NewTraceSource(s.targets, stream, width)
	return fleet.Run(fleet.Config{
		Machines:    cfg.Machines,
		Machine:     s.machCfg,
		NewPolicy:   func(i int) machine.Policy { return cfg.NewPolicy(i) },
		Dispatch:    cfg.Dispatch,
		Model:       cfg.Model,
		Admission:   s.cfg.Admission,
		Seed:        s.cfg.Seed,
		MaxCycles:   cfg.MaxCycles,
		SharedCache: cfg.SharedCache,
		Workers:     s.cfg.Workers,
		SketchAlpha: cfg.SketchAlpha,
		Obs:         s.cfg.Obs,
	}, src)
}
