package synpa

import (
	"math"
	"strings"
	"testing"
)

// prioSystem builds a small fast system with the given admission
// discipline.
func prioSystem(t *testing.T, adm string) *System {
	t.Helper()
	sys, err := New(Config{Cores: 2, QuantumCycles: 6_000, RefQuanta: 20, Seed: 7, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// checkReportFinite asserts that no aggregate or per-class metric of the
// report is NaN or Inf — the DynamicReport-layer form of the metrics
// package's degenerate-input guarantees (no best-looking phantom scores,
// no poisoned aggregates), which the per-class variants must inherit.
func checkReportFinite(t *testing.T, rep *DynamicReport) {
	t.Helper()
	for name, v := range map[string]float64{
		"MeanResponseCycles": rep.MeanResponseCycles,
		"ANTT":               rep.ANTT,
		"STP":                rep.STP,
		"WeightedSTP":        rep.WeightedSTP,
		"Occupancy":          rep.Occupancy,
	} {
		if !finite(v) {
			t.Errorf("%s = %v", name, v)
		}
	}
	for _, c := range rep.PerClass {
		for name, v := range map[string]float64{
			"ANTT":               c.ANTT,
			"MeanResponseCycles": c.MeanResponseCycles,
			"P95ResponseCycles":  c.P95ResponseCycles,
			"Weight":             c.Weight,
		} {
			if !finite(v) {
				t.Errorf("class %d %s = %v", c.Priority, name, v)
			}
		}
		if c.Completed > c.Apps {
			t.Errorf("class %d completed %d of %d apps", c.Priority, c.Completed, c.Apps)
		}
	}
}

// TestDynamicReportDegenerateInputs drives the DynamicReport metrics
// through the degenerate shapes the metrics package guards at unit level —
// a single job, a zero-work job (the work factor rounds to a one-
// instruction target), and a class that completes nothing — and asserts
// the per-class variants inherit the same behaviour: zeros, never NaN, and
// no phantom best scores.
func TestDynamicReportDegenerateInputs(t *testing.T) {
	cases := []struct {
		name  string
		trace string
		check func(t *testing.T, rep *DynamicReport)
	}{
		{
			name:  "single job",
			trace: "0 mcf 0.2\n",
			check: func(t *testing.T, rep *DynamicReport) {
				if rep.Completed != 1 || rep.ANTT <= 0 {
					t.Errorf("Completed=%d ANTT=%v", rep.Completed, rep.ANTT)
				}
				if len(rep.PerClass) != 0 {
					t.Errorf("uniform single job grew per-class rows: %+v", rep.PerClass)
				}
				if rep.WeightedSTP != rep.STP {
					t.Errorf("uniform weights: WeightedSTP %v != STP %v", rep.WeightedSTP, rep.STP)
				}
			},
		},
		{
			name: "zero work job",
			// 1e-9 of the reference target rounds to a single
			// instruction: the shortest possible job, normalized by a
			// sub-cycle isolated time.
			trace: "0 mcf 0.000000001 1 2\n0 leela_r 0.2\n",
			check: func(t *testing.T, rep *DynamicReport) {
				if rep.Completed != 2 {
					t.Errorf("Completed=%d", rep.Completed)
				}
				if len(rep.PerClass) != 2 {
					t.Fatalf("PerClass rows: %+v", rep.PerClass)
				}
				if rep.PerClass[0].Priority != 1 || rep.PerClass[0].Completed != 1 {
					t.Errorf("class 1 row: %+v", rep.PerClass[0])
				}
			},
		},
		{
			name: "single-member class mean equals p95",
			// One completed job per class: p95 of a single sample is the
			// sample.
			trace: "0 mcf 0.2 2 4\n0 leela_r 0.2 1 2\n",
			check: func(t *testing.T, rep *DynamicReport) {
				for _, c := range rep.PerClass {
					if c.Completed == 1 && c.P95ResponseCycles != c.MeanResponseCycles {
						t.Errorf("class %d: p95 %v != mean %v over one sample",
							c.Priority, c.P95ResponseCycles, c.MeanResponseCycles)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := prioSystem(t, "")
			tr, err := ParseTrace(tc.name, strings.NewReader(tc.trace))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sys.RunDynamic(tr, sys.LinuxPolicy())
			if err != nil {
				t.Fatal(err)
			}
			checkReportFinite(t, rep)
			tc.check(t, rep)
		})
	}
}

// TestDynamicReportEmptyClass pins the empty-class behaviour: a class
// whose only member cannot finish within the run bound reports Completed 0
// with zero (not NaN, not best-possible) response metrics, while the other
// classes are unaffected.
func TestDynamicReportEmptyClass(t *testing.T) {
	sys, err := New(Config{Cores: 2, QuantumCycles: 2_000, RefQuanta: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Work 50000 × the (tiny) reference target cannot retire within the
	// DefaultMaxQuanta × 2000-cycle bound; the class-3 job never finishes.
	tr, err := ParseTrace("emptyclass", strings.NewReader(
		"0 mcf 50000 3 4\n0 leela_r 0.5 1 2\n0 povray_r 0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunDynamic(tr, sys.LinuxPolicy())
	if err != nil {
		t.Fatal(err)
	}
	checkReportFinite(t, rep)
	if rep.AllCompleted {
		t.Fatal("the unfinishable job finished; the scenario no longer tests an empty class")
	}
	var c3 *ClassReport
	for i := range rep.PerClass {
		if rep.PerClass[i].Priority == 3 {
			c3 = &rep.PerClass[i]
		}
	}
	if c3 == nil {
		t.Fatalf("class 3 missing from PerClass: %+v", rep.PerClass)
	}
	if c3.Apps != 1 || c3.Completed != 0 {
		t.Fatalf("class 3 = %+v, want 1 app, 0 completed", c3)
	}
	if c3.ANTT != 0 || c3.MeanResponseCycles != 0 || c3.P95ResponseCycles != 0 {
		t.Fatalf("empty class reports non-zero response metrics: %+v", c3)
	}
	if c3.Weight != 4 {
		t.Fatalf("class 3 weight %v, want 4", c3.Weight)
	}
}

// TestRunDynamicAdmissionConfig: the Admission knob changes queue order
// end to end, unknown names error with the valid list, and every valid
// name is accepted.
func TestRunDynamicAdmissionConfig(t *testing.T) {
	if _, err := New(Config{Admission: "lifo"}); err == nil ||
		!strings.Contains(err.Error(), "valid policies") {
		t.Fatalf("unknown admission error = %v", err)
	}
	for _, name := range AdmissionPolicies() {
		if _, err := New(Config{Admission: name}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	// Saturate two SMT2 cores with four long batch jobs, then queue one
	// urgent short job behind two more batch arrivals: FIFO admits it
	// last of the queue, priority admits it first.
	trace := "0 mcf 0.6\n0 lbm_r 0.6\n0 leela_r 0.6\n0 gobmk 0.6\n" +
		"1 milc 0.6\n2 perlbench 0.6\n3 povray_r 0.1 2 4\n"
	admitOrder := func(adm string) (urgent, batch1, batch2 uint64) {
		sys := prioSystem(t, adm)
		tr, err := ParseTrace("admorder", strings.NewReader(trace))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.RunDynamic(tr, sys.LinuxPolicy())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Admission != adm {
			t.Fatalf("report admission %q, want %q", rep.Admission, adm)
		}
		if !rep.Apps[6].Admitted || !rep.Apps[4].Admitted || !rep.Apps[5].Admitted {
			t.Fatalf("queued jobs never admitted under %s", adm)
		}
		return rep.Apps[6].AdmittedAt, rep.Apps[4].AdmittedAt, rep.Apps[5].AdmittedAt
	}
	// Simultaneous departures at a slice boundary can free several threads
	// at once and admit a whole batch at the same cycle, so the order
	// shows as ≤/≥ rather than strict inequalities; the cross-discipline
	// comparison below is strict.
	fifoUrgent, fifoBatch1, fifoBatch2 := admitOrder("fifo")
	if fifoUrgent < fifoBatch1 || fifoUrgent < fifoBatch2 {
		t.Fatalf("fifo admitted the urgent job (%d) before the earlier batch arrivals (%d, %d)",
			fifoUrgent, fifoBatch1, fifoBatch2)
	}
	prioUrgent, prioBatch1, prioBatch2 := admitOrder("priority")
	if prioUrgent > prioBatch1 || prioUrgent > prioBatch2 {
		t.Fatalf("priority admitted the urgent job (%d) after a batch arrival (%d, %d)",
			prioUrgent, prioBatch1, prioBatch2)
	}
	if prioUrgent >= fifoUrgent {
		t.Fatalf("priority admission (%d) did not move the urgent job ahead of fifo's admission point (%d)",
			prioUrgent, fifoUrgent)
	}
}
