package synpa

// Placement-as-a-service: the public surface of internal/serve, so user
// code can embed the synpad daemon's HTTP endpoints (or run one in-process)
// importing only this package.
//
//	model, _, _ := sys.TrainDefaultModel()
//	srv, _ := synpa.NewPlacementServer(model, synpa.ServerConfig{})
//	l, _ := net.Listen("tcp", "127.0.0.1:0")
//	go srv.Serve(l)
//	// POST /v1/place, /v1/place/batch; hot-swap via POST /v1/model...
//	srv.Shutdown(context.Background())

import (
	"io"

	"synpa/internal/core"
	"synpa/internal/serve"
)

type (
	// PlacementServer is a long-lived placement daemon: a read-mostly
	// trained policy answering placement queries over HTTP, with atomic
	// model hot-swap and graceful drain. Build with NewPlacementServer.
	PlacementServer = serve.Server
	// ServerConfig tunes a PlacementServer (cache mode, size and
	// concurrency limits, drain deadline).
	ServerConfig = serve.Config
	// PlaceQuery is the /v1/place request body: one placement query in
	// wire form.
	PlaceQuery = serve.PlaceRequest
	// PlaceAnswer is the /v1/place response body: the placement plus
	// predicted per-app degradations.
	PlaceAnswer = serve.PlaceResponse
)

// NewPlacementServer builds a placement daemon around a trained model
// (serving generation 1). Swap models at runtime via POST /v1/model.
func NewPlacementServer(m *Model, cfg ServerConfig) (*PlacementServer, error) {
	return serve.New(m, cfg)
}

// SaveModel writes a trained model in the JSON wire format synpad loads
// (-model flag, POST /v1/model). Float64 coefficients round-trip exactly
// through JSON, so a reloaded model places bit-identically.
func SaveModel(w io.Writer, m *Model) error { return core.WriteModelJSON(w, m) }

// LoadModel reads and validates a model from its JSON wire format.
func LoadModel(r io.Reader) (*Model, error) { return core.ReadModelJSON(r) }
