package synpa

import (
	"reflect"
	"strings"
	"testing"
)

func fleetStream() TraceStream {
	return PoissonStream("fleet", 11, []string{"mcf", "leela_r", "lbm_r", "povray_r"}, 60, 2_500, 0.2)
}

func TestRunFleetAcceptance(t *testing.T) {
	sys := fastSystem(t)
	rep, err := sys.RunFleet(FleetConfig{
		Machines:  3,
		Dispatch:  DispatchLeastLoaded,
		NewPolicy: func(int) Policy { return sys.LinuxPolicy() },
	}, fleetStream())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 60 || !rep.AllCompleted || rep.Completed != 60 {
		t.Fatalf("fleet did not drain: %+v", rep)
	}
	if rep.Machines != 3 || rep.Dispatch != DispatchLeastLoaded || rep.Policy != "Linux" {
		t.Fatalf("report mislabelled: %+v", rep)
	}
	if rep.MeanResponseCycles <= 0 || rep.ANTT < 1 || rep.STP <= 0 {
		t.Fatalf("degenerate metrics: %+v", rep)
	}
}

// TestRunFleetSingleMachineMatchesRunDynamic: a one-machine fleet is the
// machine simulator — the public API must preserve the bit-for-bit
// equivalence the internal package proves.
func TestRunFleetSingleMachineMatchesRunDynamic(t *testing.T) {
	sys := fastSystem(t)
	stream := fleetStream()
	tr := CollectTrace(stream, 0)

	dyn, err := sys.RunDynamic(tr, sys.LinuxPolicy())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := sys.RunFleet(FleetConfig{
		Machines:  1,
		NewPolicy: func(int) Policy { return sys.LinuxPolicy() },
	}, fleetStream())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Cycles != dyn.Cycles || fr.Slices != dyn.Slices {
		t.Fatalf("fleet (%d cycles, %d slices) != dynamic (%d cycles, %d slices)",
			fr.Cycles, fr.Slices, dyn.Cycles, dyn.Slices)
	}
	if int(fr.Completed) != dyn.Completed || fr.Deferred != dyn.Deferred {
		t.Fatalf("fleet completion (%d done, %d deferred) != dynamic (%d, %d)",
			fr.Completed, fr.Deferred, dyn.Completed, dyn.Deferred)
	}
	if fr.MeanLive != dyn.MeanLiveApps {
		t.Fatalf("fleet occupancy %v != dynamic %v", fr.MeanLive, dyn.MeanLiveApps)
	}
}

// TestRunFleetWorkerInvariance: the public knob for parallel stepping
// (Config.Workers) must not change a single bit of the report.
func TestRunFleetWorkerInvariance(t *testing.T) {
	run := func(workers int) *FleetReport {
		sys, err := New(Config{Cores: 4, QuantumCycles: 6_000, RefQuanta: 20, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.RunFleet(FleetConfig{
			Machines:  4,
			Dispatch:  DispatchRoundRobin,
			NewPolicy: func(int) Policy { return sys.LinuxPolicy() },
		}, fleetStream())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial, parallel := run(1), run(4)
	parallel.Workers = serial.Workers
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed the report:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestRunFleetValidation(t *testing.T) {
	sys := fastSystem(t)
	pol := func(int) Policy { return sys.LinuxPolicy() }

	if _, err := sys.RunFleet(FleetConfig{Machines: 2, NewPolicy: pol}, nil); err == nil {
		t.Fatal("nil stream accepted")
	}
	if _, err := sys.RunFleet(FleetConfig{Machines: 2}, fleetStream()); err == nil {
		t.Fatal("nil policy factory accepted")
	}
	_, err := sys.RunFleet(FleetConfig{Machines: 2, Dispatch: "bogus", NewPolicy: pol}, fleetStream())
	if err == nil || !strings.Contains(err.Error(), DispatchLeastLoaded) {
		t.Fatalf("unknown dispatch error should list valid names, got %v", err)
	}
	// Interference dispatch requires a trained model.
	if _, err := sys.RunFleet(FleetConfig{Machines: 2, Dispatch: DispatchInterference, NewPolicy: pol}, fleetStream()); err == nil {
		t.Fatal("interference dispatch without a model accepted")
	}

	names := FleetDispatchers()
	if len(names) != 3 {
		t.Fatalf("dispatchers = %v, want 3", names)
	}
}
