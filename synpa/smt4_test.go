package synpa

import (
	"reflect"
	"testing"
)

// fastSMT4System returns a scaled-down 2-core SMT4 System.
func fastSMT4System(t *testing.T) *System {
	t.Helper()
	sys, err := New(Config{Cores: 2, SMTLevel: 4, QuantumCycles: 6_000, RefQuanta: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSMTLevelConfig(t *testing.T) {
	sys := fastSMT4System(t)
	if sys.SMTLevel() != 4 {
		t.Fatalf("SMTLevel = %d, want 4", sys.SMTLevel())
	}
	if sys.MaxAppsPerRun() != 8 {
		t.Fatalf("2xSMT4 capacity = %d, want 8", sys.MaxAppsPerRun())
	}
	if _, err := New(Config{Cores: 2, SMTLevel: 5}); err == nil {
		t.Fatal("SMT5 accepted")
	}
	// Zero keeps the paper's SMT2 default.
	sys2, err := New(Config{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sys2.SMTLevel() != 2 {
		t.Fatalf("default SMTLevel = %d, want 2", sys2.SMTLevel())
	}
}

// TestRunSMT4ViaPublicAPI is the public-API SMT4 end-to-end: 8 applications
// on 2 SMT4 cores under the Linux baseline and the paper-model SYNPA policy
// (which routes through the grouping subsystem at level 4), deterministic
// across repeat runs.
func TestRunSMT4ViaPublicAPI(t *testing.T) {
	apps8 := []string{"mcf", "leela_r", "lbm_r", "gobmk", "cactuBSSN_r", "povray_r", "milc", "perlbench"}
	run := func() (*RunReport, *RunReport) {
		sys := fastSMT4System(t)
		lin, err := sys.Run(apps8, sys.LinuxPolicy())
		if err != nil {
			t.Fatal(err)
		}
		syn, err := sys.Run(apps8, sys.SYNPAPolicy(PaperModel()))
		if err != nil {
			t.Fatal(err)
		}
		return lin, syn
	}
	lin, syn := run()
	for _, rep := range []*RunReport{lin, syn} {
		if rep.TurnaroundCycles == 0 {
			t.Fatalf("%s: no turnaround", rep.Policy)
		}
		if len(rep.Apps) != 8 {
			t.Fatalf("%s: %d app reports", rep.Policy, len(rep.Apps))
		}
		for _, a := range rep.Apps {
			if a.IPC <= 0 || a.IndividualSpeedup <= 0 {
				t.Fatalf("%s: degenerate app report %+v", rep.Policy, a)
			}
			// Four-way sharing cannot run an app above isolated speed.
			if a.IndividualSpeedup > 1.05 {
				t.Fatalf("%s: speedup %v above isolated", rep.Policy, a.IndividualSpeedup)
			}
		}
	}
	lin2, syn2 := run()
	if !reflect.DeepEqual(lin, lin2) || !reflect.DeepEqual(syn, syn2) {
		t.Fatal("SMT4 public-API runs are not deterministic")
	}
}

// TestRunSMT4RejectsOverCapacity pins capacity accounting through the
// public API.
func TestRunSMT4RejectsOverCapacity(t *testing.T) {
	sys := fastSMT4System(t)
	names := make([]string, 9)
	for i := range names {
		names[i] = "mcf"
	}
	if _, err := sys.Run(names, sys.LinuxPolicy()); err == nil {
		t.Fatal("9 apps on 8 hardware threads accepted")
	}
}
