// Package synpa is the public API of the SYNPA reproduction: a thread-to-
// core allocation library for SMT processors driven by ARM dispatch-stage
// performance counters, after "SYNPA: SMT Performance Analysis and
// Allocation of Threads to Cores in ARM Processors" (Navarro, Feliu, Petit,
// Gómez, Sahuquillo).
//
// The package wraps the building blocks under internal/ into a small
// workflow:
//
//	sys, _ := synpa.New(synpa.DefaultConfig())
//	model, _, _ := sys.TrainDefaultModel()          // §IV-C training
//	report, _ := sys.Run(
//	    []string{"lbm_r", "mcf", "cactuBSSN_r", "mcf",
//	             "leela_r", "leela_r", "astar", "mcf_r"}, // the paper's fb2
//	    sys.SYNPAPolicy(model))
//	fmt.Println(report.TurnaroundCycles)
//
// Because real ThunderX2 hardware is not available here, the "machine" is
// the cycle-level SMT2 simulator of internal/smtcore and applications are
// the calibrated synthetic models of internal/apps; the policy logic
// consumes only ARM PMU counter values and would drive the real
// perf + sched_setaffinity backend unchanged (see DESIGN.md).
package synpa

import (
	"fmt"
	"io"

	"synpa/internal/admission"
	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/machine"
	"synpa/internal/metrics"
	"synpa/internal/pmu"
	"synpa/internal/predcache"
	"synpa/internal/sched"
	"synpa/internal/smtcore"
	"synpa/internal/train"
	"synpa/internal/workload"
)

// Re-exported building blocks, so user code only imports this package.
type (
	// Model is a fitted interference model (Eq. 1 per category).
	Model = core.Model
	// Coefficients holds one category's Eq. 1 parameters.
	Coefficients = core.Coefficients
	// Policy decides the thread-to-core allocation each quantum. Custom
	// policies implement this interface; see examples/custom-policy.
	Policy = machine.Policy
	// QuantumState is the per-quantum information handed to a Policy.
	QuantumState = machine.QuantumState
	// Placement maps application index to core index.
	Placement = machine.Placement
	// PolicyOptions tune the SYNPA policy (matcher, inversion, extractor).
	PolicyOptions = core.PolicyOptions
	// PredCacheOptions tunes the interference-prediction memo layer behind
	// the SYNPA policy (PolicyOptions.Cache): exact-key memoization is on
	// by default and bit-identical by construction; Disabled turns it off.
	PredCacheOptions = predcache.Options
	// SharedPredCache is a sharded concurrent prediction memo one whole
	// fleet (or any number of concurrent PlaceR callers) shares; build
	// with NewSharedPredCache and hand to FleetConfig.SharedCache.
	SharedPredCache = predcache.Shared
	// PlacementArena is the per-request state of the reentrant policy
	// path: SYNPAPolicy.NewArena/PlaceR serve concurrent placement
	// queries share-nothing on one trained policy.
	PlacementArena = core.Arena
	// TrainOptions tune the §IV-C training pipeline.
	TrainOptions = train.Options
	// TrainReport summarises a training run.
	TrainReport = train.Report
)

// Counters is a snapshot of one application's PMU counters; QuantumState
// hands policies one delta per application per quantum.
type Counters = pmu.Counters

// Event identifies a hardware performance event.
type Event = pmu.Event

// The four architectural events of paper Table I, re-exported for custom
// policies.
const (
	CPUCycles     = pmu.CPUCycles
	InstSpec      = pmu.InstSpec
	StallFrontend = pmu.StallFrontend
	StallBackend  = pmu.StallBackend
	InstRetired   = pmu.InstRetired
)

// PaperModel returns the coefficients published in paper Table IV (fitted
// on the authors' ThunderX2). Models trained with TrainDefaultModel on the
// simulated system are preferred for running experiments here; the paper
// model is the documented reference point.
func PaperModel() *Model { return core.PaperCoefficients() }

// Config describes the simulated system a System runs on.
type Config struct {
	// Cores is the number of SMT cores (default 4, enough for the
	// paper's 8-application workloads at SMT2).
	Cores int
	// SMTLevel is the number of hardware threads per core — the BIOS knob
	// of §V-A. The ThunderX2 hardware supports up to SMT4; the paper (and
	// a zero value) selects SMT2. Above SMT2 the SYNPA policy solves a
	// grouping problem instead of a pairwise matching (internal/grouping).
	SMTLevel int
	// QuantumCycles is the scheduling quantum length in cycles.
	QuantumCycles uint64
	// RefQuanta is the isolated reference interval used to derive each
	// application's instruction target (§V-B methodology).
	RefQuanta int
	// Seed makes every run reproducible.
	Seed uint64
	// Workers bounds the worker goroutines that shard per-core stepping
	// within each scheduling quantum (machine.Config.Workers). Zero
	// selects GOMAXPROCS; one disables intra-run parallelism; the
	// SYNPA_WORKERS environment variable overrides. Results are
	// bit-identical at every worker count.
	Workers int
	// Admission selects the open-system admission discipline that orders
	// the waiting queue when arrivals exceed the free hardware threads:
	// "fifo" (default), "sjf", "priority" (aged classes) or "backfill"
	// (EASY-style head-protected shortest-first). Closed-system Run is
	// unaffected. See internal/admission for the discipline semantics.
	Admission string
	// Obs, when non-nil, records every run's event trace and metrics (see
	// NewObserver and the exporters in obs.go). Observability never
	// perturbs simulation results; a nil Obs costs one nil check per
	// instrumented site.
	Obs *Observer
}

// AdmissionPolicies lists the valid Config.Admission values.
func AdmissionPolicies() []string { return admission.Names() }

// DefaultConfig returns the paper-equivalent defaults.
func DefaultConfig() Config {
	return Config{Cores: 4, SMTLevel: smtcore.DefaultSMTLevel, QuantumCycles: 20_000, RefQuanta: 100, Seed: 1}
}

// System is a simulated ARM SMT machine plus the measurement methodology
// needed to run multi-program workloads and report the paper's metrics.
type System struct {
	cfg     Config
	machCfg machine.Config
	adm     admission.Policy
	targets *workload.TargetCache
}

// New creates a System. It validates the configuration.
func New(cfg Config) (*System, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.QuantumCycles == 0 {
		cfg.QuantumCycles = 20_000
	}
	if cfg.RefQuanta <= 0 {
		cfg.RefQuanta = 100
	}
	mc := machine.DefaultConfig()
	mc.Cores = cfg.Cores
	mc.Core.SMTLevel = cfg.SMTLevel
	mc.QuantumCycles = cfg.QuantumCycles
	mc.Workers = cfg.Workers
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	adm, err := admission.ByName(cfg.Admission)
	if err != nil {
		return nil, fmt.Errorf("synpa: %w", err)
	}
	return &System{
		cfg:     cfg,
		machCfg: mc,
		adm:     adm,
		targets: workload.NewTargetCache(mc, cfg.RefQuanta, cfg.Seed),
	}, nil
}

// Applications lists the 28 available application models (paper Table III).
func (s *System) Applications() []string { return apps.Names() }

// TrainDefaultModel trains the three-category interference model on the
// paper's 22-application training set with default options.
func (s *System) TrainDefaultModel() (*Model, *TrainReport, error) {
	opts := train.DefaultOptions()
	opts.Machine = s.machCfg
	return train.Train(apps.TrainingSet(), opts)
}

// TrainModel trains a model on an explicit application list with custom
// options. Zero-value fields of opts fall back to defaults, field by field:
// a caller setting only SampleFrac keeps its SampleFrac and inherits
// default quanta counts, and vice versa. The machine configuration is
// always the System's.
func (s *System) TrainModel(appNames []string, opts TrainOptions) (*Model, *TrainReport, error) {
	models, err := resolve(appNames)
	if err != nil {
		return nil, nil, err
	}
	def := train.DefaultOptions()
	// A fully zero options value means "use the defaults", including the
	// parallel fan-out; a false Parallel alongside any customised field is
	// an explicit request for a serial run and is honoured.
	if opts.IsolatedQuanta == 0 && opts.PairQuanta == 0 && opts.SampleFrac == 0 &&
		opts.Seed == 0 && opts.Extract == nil && opts.Categories == nil && !opts.Parallel {
		opts.Parallel = def.Parallel
	}
	if opts.IsolatedQuanta == 0 {
		opts.IsolatedQuanta = def.IsolatedQuanta
	}
	if opts.PairQuanta == 0 {
		opts.PairQuanta = def.PairQuanta
	}
	if opts.SampleFrac == 0 {
		opts.SampleFrac = def.SampleFrac
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	opts.Machine = s.machCfg
	return train.Train(models, opts)
}

// SYNPAPolicy builds the paper's allocation policy around a trained model.
func (s *System) SYNPAPolicy(m *Model) Policy {
	return core.MustPolicy(m, core.PolicyOptions{})
}

// SYNPAPolicyWithOptions builds a SYNPA variant (alternative matcher,
// disabled inversion, different extractor) for ablation studies.
func (s *System) SYNPAPolicyWithOptions(m *Model, opt PolicyOptions) (Policy, error) {
	return core.NewPolicy(m, opt)
}

// NewSharedPredCache builds a sharded concurrent prediction memo (shards
// 0 selects the predcache default). Hand it to FleetConfig.SharedCache so
// every machine shares one warm cache, or install it on a SYNPA policy
// (core.Policy.SetSharedCache) to serve concurrent PlaceR callers.
// Sharing is bit-identical by construction: a hit implies bit-identical
// inputs to a pure function, so no output can depend on who warmed an
// entry first.
func NewSharedPredCache(opt PredCacheOptions, shards int) *SharedPredCache {
	return predcache.NewShared(opt, shards)
}

// LinuxPolicy returns the arrival-order baseline the paper compares
// against.
func (s *System) LinuxPolicy() Policy { return sched.Linux{} }

// RandomPolicy returns a policy that re-pairs applications randomly every
// quantum.
func (s *System) RandomPolicy(seed uint64) Policy { return sched.NewRandom(seed) }

// AppReport is one application's outcome within a Run.
type AppReport struct {
	// Name is the benchmark name.
	Name string
	// TurnaroundCycles is when the app first completed its target.
	TurnaroundCycles uint64
	// IPC is target instructions / turnaround cycles.
	IPC float64
	// IndividualSpeedup is IPC divided by the app's isolated IPC (<= ~1).
	IndividualSpeedup float64
}

// RunReport is the outcome of one workload execution, carrying the paper's
// §VI metrics.
type RunReport struct {
	// Policy is the allocation policy used.
	Policy string
	// TurnaroundCycles is the workload turnaround time (slowest app).
	TurnaroundCycles uint64
	// Quanta is the number of scheduling quanta executed.
	Quanta int
	// Apps holds per-application results in workload order.
	Apps []AppReport
	// Fairness is 1 − σ/µ over the individual speedups (§VI-D).
	Fairness float64
	// IPCGeomean is the workload IPC (geometric mean over apps).
	IPCGeomean float64
	// ANTT is the average normalized turnaround time (lower is better).
	ANTT float64
	// STP is the system throughput in isolated-app units.
	STP float64
}

// Run executes the named applications (up to SMTLevel per core) under the
// given policy, using the paper's §V-B methodology: per-application instruction
// targets from isolated reference runs, relaunch-on-completion to keep the
// machine loaded, and completion of the slowest application as the workload
// turnaround time.
func (s *System) Run(appNames []string, policy Policy) (*RunReport, error) {
	if policy == nil {
		return nil, fmt.Errorf("synpa: nil policy")
	}
	models, err := resolve(appNames)
	if err != nil {
		return nil, err
	}
	targets := make([]uint64, len(models))
	isoIPC := make([]float64, len(models))
	for i, m := range models {
		if targets[i], err = s.targets.Target(m); err != nil {
			return nil, err
		}
		if isoIPC[i], err = s.targets.IsolatedIPC(m); err != nil {
			return nil, err
		}
	}
	mach, err := machine.New(s.machCfg)
	if err != nil {
		return nil, err
	}
	res, err := mach.Run(models, targets, policy, machine.RunnerOptions{Seed: s.cfg.Seed, Obs: s.cfg.Obs})
	if err != nil {
		return nil, err
	}
	tt, err := metrics.TurnaroundCycles(res)
	if err != nil {
		return nil, err
	}
	speedups, err := metrics.IndividualSpeedups(res, isoIPC)
	if err != nil {
		return nil, err
	}
	ipcGeo, err := metrics.GeomeanIPC(res)
	if err != nil {
		return nil, err
	}

	fairness, err := metrics.Fairness(speedups)
	if err != nil {
		return nil, err
	}
	antt, err := metrics.ANTT(speedups)
	if err != nil {
		return nil, err
	}

	rep := &RunReport{
		Policy:           res.Policy,
		TurnaroundCycles: tt,
		Quanta:           res.Quanta,
		Fairness:         fairness,
		IPCGeomean:       ipcGeo,
		ANTT:             antt,
		STP:              metrics.STP(speedups),
	}
	for i := range res.Apps {
		rep.Apps = append(rep.Apps, AppReport{
			Name:              res.Apps[i].Name,
			TurnaroundCycles:  res.Apps[i].CompletedAtCycle,
			IPC:               res.Apps[i].IPC,
			IndividualSpeedup: speedups[i],
		})
	}
	return rep, nil
}

// Trace is an open-system arrival schedule: applications arrive at their
// trace cycles, run their finite work and depart (contrast with Run, whose
// closed system keeps every application resident forever).
type Trace = workload.Trace

// TraceEntry is one arrival of a Trace.
type TraceEntry = workload.TraceEntry

// ParseTrace reads a scripted trace in the line format
// "<arrive_cycle> <app_name> [work_factor]" (see workload.ParseTrace).
func ParseTrace(name string, r io.Reader) (Trace, error) { return workload.ParseTrace(name, r) }

// PoissonTrace generates a deterministic trace with Poisson arrivals drawn
// from the given application pool; work scales each app's reference target
// (0 means the full reference work).
func PoissonTrace(name string, seed uint64, pool []string, n int, meanGapCycles, work float64) Trace {
	return workload.PoissonTrace(name, seed, pool, n, meanGapCycles, work)
}

// ClassShare is one priority class's share of a mixed-priority trace.
type ClassShare = workload.ClassShare

// PoissonTraceMixed generates a deterministic Poisson trace whose arrivals
// draw a priority class (and class weight) from the given mix, with
// probability proportional to each class's Share.
func PoissonTraceMixed(name string, seed uint64, pool []string, n int, meanGapCycles, work float64, mix []ClassShare) Trace {
	return workload.PoissonTraceMixed(name, seed, pool, n, meanGapCycles, work, mix)
}

// DynamicAppReport is one application's outcome within a dynamic run.
type DynamicAppReport struct {
	// Name is the benchmark name.
	Name string
	// Priority is the app's class (higher = more urgent, default 0) and
	// Weight its class weight in the weighted-STP summary (0 means 1).
	Priority int
	Weight   float64
	// ArriveAt and FinishAt bracket the app's life (cycles); FinishAt is
	// meaningless unless Finished is true.
	ArriveAt, FinishAt uint64
	// Finished reports whether the app completed its work within the run
	// bound. This — not a zero FinishAt — is the completion test: cycle 0
	// is a legitimate finish stamp for zero-length work at cycle 0.
	Finished bool
	// Admitted reports whether the app ever got a hardware thread; in an
	// overloaded bounded run an arrival can stay queued to the end.
	Admitted bool
	// AdmittedAt is when the app first got a hardware thread (> ArriveAt
	// when it had to queue behind a full machine). Meaningless when
	// Admitted is false.
	AdmittedAt uint64
	// ResponseCycles is FinishAt − ArriveAt: queueing plus execution.
	ResponseCycles uint64
	// NormalizedResponse is ResponseCycles divided by the app's isolated
	// execution time for the same work (≥ ~1; lower is better). 0 if the
	// app never finished.
	NormalizedResponse float64
	// IPC is target instructions / response cycles.
	IPC float64
}

// ClassReport is one priority class's metrics within a DynamicReport:
// per-class ANTT, mean/p95 response and the class weight (see
// workload.ClassStats for the field semantics).
type ClassReport = workload.ClassStats

// DynamicReport is the outcome of one open-system trace execution.
type DynamicReport struct {
	// Policy is the allocation policy used.
	Policy string
	// Admission is the admission discipline that ordered the waiting
	// queue ("fifo" unless Config.Admission chose otherwise).
	Admission string
	// Trace is the trace name.
	Trace string
	// Cycles is the simulated time span; Slices counts policy invocations
	// (quantum boundaries plus off-quantum admissions).
	Cycles uint64
	Slices int
	// Apps holds per-application results in trace order.
	Apps []DynamicAppReport
	// Completed counts apps that finished; Deferred counts arrivals that
	// queued for a hardware thread.
	Completed, Deferred int
	// MeanResponseCycles averages response time over completed apps.
	MeanResponseCycles float64
	// ANTT is the mean normalized response time over completed apps — the
	// open-system analogue of the closed system's ANTT (lower is better).
	ANTT float64
	// STP is the completed isolated-app work per cycle: Σ isolated-time of
	// completed apps / Cycles, in "isolated applications" units (higher is
	// better; bounded by the hardware-thread count).
	STP float64
	// WeightedSTP is STP with each completed app's isolated work scaled
	// by its class weight, normalized by the mean weight of completed
	// apps (uniform weights reproduce STP exactly) — the batch-throughput
	// side of the per-class latency trade.
	WeightedSTP float64
	// PerClass breaks the response-time metrics out by priority class,
	// most urgent first. Empty when every arrival is class 0 with default
	// weight.
	PerClass []ClassReport
	// MeanLiveApps is the time-averaged number of live applications;
	// Occupancy normalises it by the hardware-thread capacity.
	MeanLiveApps float64
	Occupancy    float64
	// AllCompleted reports whether every arrival finished within bound.
	AllCompleted bool
}

// RunDynamic executes an open-system trace under the given policy:
// applications arrive at their trace cycles (queueing when the machine is
// full), run to true completion — no relaunch — and depart, so cores run
// partially occupied and the live-application count can be odd. Targets
// come from the same §V-B isolated-reference methodology as Run, scaled by
// each entry's Work factor.
func (s *System) RunDynamic(trace Trace, policy Policy) (*DynamicReport, error) {
	if policy == nil {
		return nil, fmt.Errorf("synpa: nil policy")
	}
	work, isoCycles, err := s.targets.DynamicWork(trace)
	if err != nil {
		return nil, err
	}
	mach, err := machine.New(s.machCfg)
	if err != nil {
		return nil, err
	}
	res, err := mach.RunDynamic(work, policy, machine.DynamicOptions{Seed: s.cfg.Seed, Admission: s.adm, Obs: s.cfg.Obs})
	if err != nil {
		return nil, err
	}

	stats := workload.SummarizeDynamic(res, isoCycles)
	rep := &DynamicReport{
		Policy:             res.Policy,
		Admission:          res.Admission,
		Trace:              trace.Name,
		Cycles:             res.Cycles,
		Slices:             res.Slices,
		Deferred:           res.Deferred,
		MeanLiveApps:       res.MeanLiveApps,
		AllCompleted:       res.AllCompleted,
		Completed:          stats.Completed,
		MeanResponseCycles: stats.MeanResponseCycles,
		ANTT:               stats.ANTT,
		STP:                stats.STP,
		WeightedSTP:        stats.WeightedSTP,
		PerClass:           stats.PerClass,
	}
	if hw := float64(s.MaxAppsPerRun()); hw > 0 {
		rep.Occupancy = res.MeanLiveApps / hw
	}
	for i := range res.Apps {
		a := res.Apps[i]
		ar := DynamicAppReport{
			Name:           a.Name,
			Priority:       a.Priority,
			Weight:         a.Weight,
			ArriveAt:       a.ArriveAt,
			Admitted:       a.Admitted,
			AdmittedAt:     a.AdmittedAt,
			Finished:       a.Finished,
			FinishAt:       a.FinishAt,
			ResponseCycles: a.ResponseCycles,
			IPC:            a.IPC,
		}
		if a.Finished && a.ResponseCycles > 0 {
			ar.NormalizedResponse = float64(a.ResponseCycles) / isoCycles[i]
		}
		rep.Apps = append(rep.Apps, ar)
	}
	return rep, nil
}

// StandardWorkloads returns the names of the paper's twenty workloads
// (be0–be4, fe0–fe4, fb0–fb9) with their application lists.
func (s *System) StandardWorkloads() map[string][]string {
	out := map[string][]string{}
	for _, w := range workload.StandardSet(s.cfg.Seed) {
		out[w.Name] = w.Names()
	}
	return out
}

// MaxAppsPerRun returns the hardware-thread capacity of the system:
// Cores × SMTLevel.
func (s *System) MaxAppsPerRun() int { return s.machCfg.HWThreads() }

// SMTLevel returns the configured hardware threads per core.
func (s *System) SMTLevel() int { return s.machCfg.ThreadsPerCore() }

// resolve maps names to application models.
func resolve(names []string) ([]*apps.Model, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("synpa: empty application list")
	}
	out := make([]*apps.Model, len(names))
	for i, n := range names {
		m, err := apps.ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}
