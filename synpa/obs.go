// Observability: the public surface of internal/obs. An Observer attached
// to Config records a deterministic event trace (every quantum, placement,
// admission and dispatch decision, stamped with simulated time) and a
// metrics registry (counters and streaming histograms) without perturbing
// the simulation — trace and metrics output is a pure function of Config +
// seed, byte-identical at every worker count.
package synpa

import (
	"io"

	"synpa/internal/obs"
)

// Observer is the run-scoped tracing and metrics handle. Attach one via
// Config.Obs, run, then export with WriteChromeTrace / WriteTraceJSONL /
// WriteMetricsJSON. A nil Observer disables observability at the cost of
// one nil check per instrumented site.
type Observer = obs.Observer

// TraceFormats lists the supported trace export formats ("chrome",
// "jsonl").
func TraceFormats() []string { return obs.TraceFormats() }

// NewObserver builds an observer whose trace is bounded at maxEvents
// (0 selects the obs default of ~1M events; excess events are dropped and
// counted).
func NewObserver(maxEvents int) *Observer { return obs.NewObserver(maxEvents) }

// WriteChromeTrace exports the observer's trace in Chrome trace-event JSON
// — load it in ui.perfetto.dev or chrome://tracing. Machines render as
// processes, hardware threads as threads, and timestamps are simulated
// microseconds.
func WriteChromeTrace(w io.Writer, o *Observer) error {
	return obs.WriteChromeTrace(w, o.Trace)
}

// WriteTraceJSONL exports the observer's trace as compact JSONL: one event
// object per line plus a trailing summary line.
func WriteTraceJSONL(w io.Writer, o *Observer) error {
	return obs.WriteJSONL(w, o.Trace)
}

// WriteMetricsJSON exports the observer's metrics registry snapshot
// (counters, gauges, histogram summaries) as indented JSON with sorted
// keys.
func WriteMetricsJSON(w io.Writer, o *Observer) error {
	snap := o.Reg.Snapshot()
	return snap.WriteJSON(w)
}
