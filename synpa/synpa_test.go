package synpa

import (
	"testing"
)

// fastSystem returns a System scaled down for unit tests.
func fastSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(Config{Cores: 4, QuantumCycles: 6_000, RefQuanta: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewDefaultsAndValidation(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.MaxAppsPerRun() != 8 {
		t.Fatalf("default capacity = %d, want 8", sys.MaxAppsPerRun())
	}
	if _, err := New(Config{Cores: 2, QuantumCycles: 10}); err == nil {
		t.Fatal("absurd quantum accepted")
	}
}

func TestApplicationsCatalogue(t *testing.T) {
	sys := fastSystem(t)
	names := sys.Applications()
	if len(names) != 28 {
		t.Fatalf("catalogue has %d apps, want 28", len(names))
	}
}

func TestStandardWorkloads(t *testing.T) {
	sys := fastSystem(t)
	std := sys.StandardWorkloads()
	if len(std) != 20 {
		t.Fatalf("standard set has %d workloads, want 20", len(std))
	}
	fb2 := std["fb2"]
	if len(fb2) != 8 || fb2[0] != "lbm_r" {
		t.Fatalf("fb2 = %v", fb2)
	}
}

func TestPaperModel(t *testing.T) {
	m := PaperModel()
	if m.K() != 3 || m.Coef[2].Gamma != 1.4391 {
		t.Fatalf("paper model wrong: %+v", m.Coef)
	}
}

func TestRunLinuxBaseline(t *testing.T) {
	sys := fastSystem(t)
	rep, err := sys.Run([]string{"mcf", "leela_r", "lbm_r", "gobmk"}, sys.LinuxPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "Linux" {
		t.Fatalf("policy = %q", rep.Policy)
	}
	if rep.TurnaroundCycles == 0 || rep.Quanta == 0 {
		t.Fatal("empty report")
	}
	if len(rep.Apps) != 4 {
		t.Fatalf("report has %d apps", len(rep.Apps))
	}
	for _, a := range rep.Apps {
		if a.IPC <= 0 || a.IndividualSpeedup <= 0 || a.IndividualSpeedup > 1.05 {
			t.Fatalf("app %s metrics out of range: %+v", a.Name, a)
		}
	}
	if rep.Fairness <= 0 || rep.Fairness > 1 {
		t.Fatalf("fairness = %v", rep.Fairness)
	}
	if rep.ANTT < 1 {
		t.Fatalf("ANTT = %v, must be >= 1", rep.ANTT)
	}
	if rep.STP <= 0 || rep.STP > 4 {
		t.Fatalf("STP = %v", rep.STP)
	}
}

func TestRunWithPaperModelPolicy(t *testing.T) {
	// The paper model is not trained on this simulator but must still
	// drive the policy machinery without error.
	sys := fastSystem(t)
	rep, err := sys.Run(
		[]string{"mcf", "leela_r", "lbm_r", "gobmk"},
		sys.SYNPAPolicy(PaperModel()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "SYNPA" {
		t.Fatalf("policy = %q", rep.Policy)
	}
}

func TestRunRandomPolicy(t *testing.T) {
	sys := fastSystem(t)
	rep, err := sys.Run([]string{"mcf", "leela_r", "hmmer", "nab_r"}, sys.RandomPolicy(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "Random" {
		t.Fatalf("policy = %q", rep.Policy)
	}
}

func TestTrainModelKeepsCustomOptions(t *testing.T) {
	// Regression: TrainModel used to replace the ENTIRE options struct
	// with defaults whenever IsolatedQuanta was zero, silently discarding
	// every other customised field. Custom fields must survive, with only
	// the zero-valued ones defaulted.
	sys, err := New(Config{Cores: 1, QuantumCycles: 5_000, RefQuanta: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	custom := []string{"cat-a", "cat-b", "cat-c"}
	model, rep, err := sys.TrainModel([]string{"mcf", "leela_r", "gobmk"}, TrainOptions{
		// IsolatedQuanta deliberately zero: it must be defaulted...
		PairQuanta: 12,
		SampleFrac: 1.0,
		Seed:       99,
		Categories: custom,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...while the custom categories flow through to the fitted model
	// (the old code would have dropped them for the paper's three names).
	if got := model.Categories; !equalStrings(got, custom) {
		t.Fatalf("custom categories discarded: got %v, want %v", got, custom)
	}
	if rep.Apps != 3 || rep.Pairs != 3 || rep.Samples == 0 {
		t.Fatalf("training report %+v", rep)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRunErrors(t *testing.T) {
	sys := fastSystem(t)
	if _, err := sys.Run(nil, sys.LinuxPolicy()); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := sys.Run([]string{"nonexistent"}, sys.LinuxPolicy()); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := sys.Run([]string{"mcf"}, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	nine := make([]string, 9)
	for i := range nine {
		nine[i] = "mcf"
	}
	if _, err := sys.Run(nine, sys.LinuxPolicy()); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestSYNPAPolicyWithOptions(t *testing.T) {
	sys := fastSystem(t)
	p, err := sys.SYNPAPolicyWithOptions(PaperModel(), PolicyOptions{Name: "variant"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "variant" {
		t.Fatalf("name = %q", p.Name())
	}
	if _, err := sys.SYNPAPolicyWithOptions(nil, PolicyOptions{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestTrainModelSmallSet(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	sys := fastSystem(t)
	model, rep, err := sys.TrainModel(
		[]string{"mcf", "leela_r", "lbm_r", "gobmk", "hmmer", "nab_r"},
		TrainOptions{IsolatedQuanta: 40, PairQuanta: 30, SampleFrac: 1.0, Seed: 5, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if model.K() != 3 || rep.Pairs != 15 {
		t.Fatalf("model K=%d pairs=%d", model.K(), rep.Pairs)
	}
	if _, _, err := sys.TrainModel([]string{"zzz"}, TrainOptions{}); err == nil {
		t.Fatal("unknown app accepted for training")
	}
}

func TestEndToEndSpeedupViaPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("training + 2 workload runs")
	}
	sys, err := New(Config{Cores: 4, QuantumCycles: 8_000, RefQuanta: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := sys.TrainModel(
		[]string{"mcf", "lbm_r", "milc", "leela_r", "gobmk", "perlbench", "hmmer", "nab_r"},
		TrainOptions{IsolatedQuanta: 50, PairQuanta: 35, SampleFrac: 1.0, Seed: 5, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	// Arrival order that makes Linux pair same-type apps.
	wl := []string{"lbm_r", "mcf", "leela_r", "gobmk", "milc", "mcf", "leela_r", "perlbench"}
	linux, err := sys.Run(wl, sys.LinuxPolicy())
	if err != nil {
		t.Fatal(err)
	}
	synpaRep, err := sys.Run(wl, sys.SYNPAPolicy(model))
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(linux.TurnaroundCycles) / float64(synpaRep.TurnaroundCycles)
	t.Logf("public-API TT speedup: %.3f", speedup)
	if speedup < 1.05 {
		t.Fatalf("speedup %.3f too small on an adversarial mixed workload", speedup)
	}
	if synpaRep.Fairness < linux.Fairness {
		t.Errorf("SYNPA fairness %.3f below Linux %.3f", synpaRep.Fairness, linux.Fairness)
	}
}
