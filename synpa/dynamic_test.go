package synpa

import (
	"reflect"
	"strings"
	"testing"
)

// acceptanceTrace is the ISSUE's acceptance scenario: 5 apps on 4 cores —
// odd occupancy — with one mid-run arrival and one early departure.
func acceptanceTrace(t *testing.T) Trace {
	t.Helper()
	tr, err := ParseTrace("accept", strings.NewReader(`
		0      mcf
		0      leela_r
		0      lbm_r
		0      gobmk    0.25  # departs early
		18000  povray_r       # arrives mid-run: 5 live apps, odd
	`))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunDynamicAcceptance(t *testing.T) {
	sys := fastSystem(t)
	tr := acceptanceTrace(t)
	for _, tc := range []struct {
		name   string
		policy Policy
	}{
		{"Linux", sys.LinuxPolicy()},
		{"Random", sys.RandomPolicy(5)},
		// The paper-model SYNPA policy must survive odd live-app counts
		// (phantom-vertex matching) and mid-run admissions.
		{"SYNPA", sys.SYNPAPolicy(PaperModel())},
	} {
		rep, err := sys.RunDynamic(tr, tc.policy)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.Policy != tc.name {
			t.Fatalf("policy = %q, want %q", rep.Policy, tc.name)
		}
		if !rep.AllCompleted || rep.Completed != 5 {
			t.Fatalf("%s: completed %d/5, AllCompleted=%v", tc.name, rep.Completed, rep.AllCompleted)
		}
		for i, a := range rep.Apps {
			if a.FinishAt == 0 || a.ResponseCycles == 0 {
				t.Fatalf("%s app %d (%s): no response time: %+v", tc.name, i, a.Name, a)
			}
			if a.NormalizedResponse <= 0 {
				t.Fatalf("%s app %d: normalized response %v", tc.name, i, a.NormalizedResponse)
			}
			if a.FinishAt != a.ArriveAt+a.ResponseCycles {
				t.Fatalf("%s app %d: inconsistent timestamps %+v", tc.name, i, a)
			}
		}
		// The short job departs first; the mid-run arrival arrived last.
		if rep.Apps[3].FinishAt >= rep.Apps[0].FinishAt {
			t.Fatalf("%s: early departer finished at %d after %d", tc.name, rep.Apps[3].FinishAt, rep.Apps[0].FinishAt)
		}
		if rep.Apps[4].ArriveAt != 18000 {
			t.Fatalf("%s: arrival at %d", tc.name, rep.Apps[4].ArriveAt)
		}
		if rep.ANTT < 1 {
			t.Fatalf("%s: ANTT = %v", tc.name, rep.ANTT)
		}
		if rep.Occupancy <= 0 || rep.Occupancy > 1 {
			t.Fatalf("%s: occupancy = %v", tc.name, rep.Occupancy)
		}
	}
}

func TestRunDynamicDeterministicSeed(t *testing.T) {
	// Same system seed → bit-identical DynamicReport, including response
	// times, for every policy kind.
	tr := acceptanceTrace(t)
	run := func(kind string) *DynamicReport {
		sys := fastSystem(t)
		var p Policy
		switch kind {
		case "linux":
			p = sys.LinuxPolicy()
		case "random":
			p = sys.RandomPolicy(11)
		default:
			p = sys.SYNPAPolicy(PaperModel())
		}
		rep, err := sys.RunDynamic(tr, p)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, kind := range []string{"linux", "random", "synpa"} {
		a, b := run(kind), run(kind)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different dynamic reports:\n%+v\n%+v", kind, a, b)
		}
	}
}

func TestRunDynamicPoisson(t *testing.T) {
	sys := fastSystem(t)
	tr := PoissonTrace("poisson", 21, []string{"mcf", "leela_r", "gobmk", "lbm_r"}, 6, 12_000, 0.4)
	rep, err := sys.RunDynamic(tr, sys.LinuxPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllCompleted {
		t.Fatalf("poisson run incomplete: %+v", rep)
	}
	if rep.STP <= 0 {
		t.Fatalf("STP = %v", rep.STP)
	}
}

func TestRunDynamicErrors(t *testing.T) {
	sys := fastSystem(t)
	if _, err := sys.RunDynamic(acceptanceTrace(t), nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := sys.RunDynamic(Trace{Name: "empty"}, sys.LinuxPolicy()); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := Trace{Name: "bad", Entries: []TraceEntry{{App: "nope"}}}
	if _, err := sys.RunDynamic(bad, sys.LinuxPolicy()); err == nil {
		t.Fatal("unknown app accepted")
	}
}
