// Example dynamic-workload: open-system execution with arrivals, true
// completions and partial occupancy.
//
// The closed-system Run keeps exactly its applications resident forever
// (relaunch-on-completion, paper §V-B). This example instead drives
// System.RunDynamic with an arrival trace: five applications on a
// four-core SMT2 machine, one arriving mid-run and one departing early, so
// the live-application count passes through 4 → 5 (odd!) → 4 → 3 while the
// policies keep allocating. It then runs a Poisson arrival stream, the
// open-system workload model of queueing theory.
//
// The SYNPA policy uses the paper's published Table IV coefficients so the
// example stays fast; train your own model with TrainDefaultModel for
// simulator-calibrated decisions (see examples/training).
package main

import (
	"fmt"
	"log"
	"strings"

	"synpa/synpa"
)

func main() {
	sys, err := synpa.New(synpa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A scripted trace: cycles are absolute arrival times; Work scales the
	// app's reference instruction target (0 means the full target).
	scripted, err := synpa.ParseTrace("churn", strings.NewReader(`
		# four apps at t=0; gobmk does 30% of its reference work and leaves
		0      mcf
		0      leela_r
		0      lbm_r
		0      gobmk    0.3
		# a fifth app arrives mid-run: 5 live apps on 4 cores, odd occupancy
		60000  povray_r
	`))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== scripted churn trace ===")
	for _, policy := range []synpa.Policy{
		sys.LinuxPolicy(),
		sys.SYNPAPolicy(synpa.PaperModel()),
	} {
		rep, err := sys.RunDynamic(scripted, policy)
		if err != nil {
			log.Fatal(err)
		}
		show(rep)
	}

	// A Poisson stream: deterministic (seeded) exponential inter-arrival
	// gaps, uniform draws from the pool, half the reference work each.
	poisson := synpa.PoissonTrace("poisson", 42,
		[]string{"mcf", "leela_r", "lbm_r", "gobmk"}, 8, 30_000, 0.5)
	fmt.Println("=== poisson arrivals ===")
	rep, err := sys.RunDynamic(poisson, sys.LinuxPolicy())
	if err != nil {
		log.Fatal(err)
	}
	show(rep)
}

func show(r *synpa.DynamicReport) {
	fmt.Printf("%s: %d/%d completed in %d cycles, ANTT=%.3f STP=%.3f occupancy=%.1f%%\n",
		r.Policy, r.Completed, len(r.Apps), r.Cycles, r.ANTT, r.STP, r.Occupancy*100)
	for _, a := range r.Apps {
		if !a.Finished {
			fmt.Printf("  %-13s arrived %7d, did not finish\n", a.Name, a.ArriveAt)
			continue
		}
		fmt.Printf("  %-13s arrived %7d, finished %8d, response %8d (%.2fx isolated)\n",
			a.Name, a.ArriveAt, a.FinishAt, a.ResponseCycles, a.NormalizedResponse)
	}
	fmt.Println()
}
