// Mixed-workload study: build the paper's three published workloads (be1,
// fe2, fb2) plus a custom mix, run each under Linux, Random and SYNPA, and
// report the full §VI metric set (turnaround time, fairness, IPC geomean,
// ANTT, STP). This is the domain scenario of the paper's introduction: an
// HPC node running a bag of SPEC-style jobs whose throughput depends on who
// shares a core with whom.
//
//	go run ./examples/mixed-workload
package main

import (
	"fmt"
	"log"

	"synpa/synpa"
)

func main() {
	sys, err := synpa.New(synpa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := sys.TrainDefaultModel()
	if err != nil {
		log.Fatal(err)
	}

	std := sys.StandardWorkloads()
	workloads := []struct {
		name string
		apps []string
	}{
		{"be1 (backend-intensive, Fig 6a)", std["be1"]},
		{"fe2 (frontend-intensive, Fig 6b)", std["fe2"]},
		{"fb2 (mixed, §VI-C)", std["fb2"]},
		{"custom (worst-case arrival order)", []string{
			"mcf", "milc", "gobmk", "perlbench",
			"lbm_r", "xalancbmk_r", "leela_r", "astar",
		}},
	}

	policies := []struct {
		name string
		p    synpa.Policy
	}{
		{"Linux", sys.LinuxPolicy()},
		{"Random", sys.RandomPolicy(42)},
		{"SYNPA", sys.SYNPAPolicy(model)},
	}

	for _, w := range workloads {
		fmt.Printf("=== %s ===\n    %v\n", w.name, w.apps)
		var baselineTT uint64
		for _, pol := range policies {
			rep, err := sys.Run(w.apps, pol.p)
			if err != nil {
				log.Fatal(err)
			}
			speedup := 1.0
			if baselineTT == 0 {
				baselineTT = rep.TurnaroundCycles
			} else {
				speedup = float64(baselineTT) / float64(rep.TurnaroundCycles)
			}
			fmt.Printf("  %-7s TT=%-9d speedup=%.3f fairness=%.3f IPC=%.3f ANTT=%.3f STP=%.3f\n",
				pol.name, rep.TurnaroundCycles, speedup, rep.Fairness,
				rep.IPCGeomean, rep.ANTT, rep.STP)
		}
		fmt.Println()
	}
}
