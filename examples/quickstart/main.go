// Quickstart: train the SYNPA interference model, run one mixed workload
// under the Linux baseline and under SYNPA, and print the turnaround-time
// speedup — the paper's headline experiment in miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"synpa/synpa"
)

func main() {
	sys, err := synpa.New(synpa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training the three-category interference model (§IV-C)...")
	model, report, err := sys.TrainDefaultModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d applications, %d SMT pairs, %d samples\n\n",
		report.Apps, report.Pairs, report.Samples)
	for k, name := range model.Categories {
		c := model.Coef[k]
		fmt.Printf("  %-22s alpha=%+.4f beta=%+.4f gamma=%+.4f rho=%+.4f (MSE %.4f)\n",
			name, c.Alpha, c.Beta, c.Gamma, c.Rho, model.MSE[k])
	}

	// A mixed workload of four backend-bound and four frontend-bound
	// applications, ordered so that the arrival-order baseline pairs
	// same-type apps — the scenario SYNPA is built to fix.
	workload := []string{
		"lbm_r", "mcf", "leela_r", "astar",
		"cactuBSSN_r", "mcf", "leela_r", "mcf_r",
	}
	fmt.Printf("\nworkload: %v\n\n", workload)

	linux, err := sys.Run(workload, sys.LinuxPolicy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Linux:  TT=%d cycles  fairness=%.3f  IPC=%.3f\n",
		linux.TurnaroundCycles, linux.Fairness, linux.IPCGeomean)

	synpaRep, err := sys.Run(workload, sys.SYNPAPolicy(model))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SYNPA:  TT=%d cycles  fairness=%.3f  IPC=%.3f\n",
		synpaRep.TurnaroundCycles, synpaRep.Fairness, synpaRep.IPCGeomean)

	fmt.Printf("\nturnaround-time speedup of SYNPA over Linux: %.2fx\n",
		float64(linux.TurnaroundCycles)/float64(synpaRep.TurnaroundCycles))
}
