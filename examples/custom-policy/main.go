// Custom-policy example: implement a user-defined thread-to-core allocation
// policy against the public API and race it against the library's builtin
// policies. The custom policy here is a counter-driven heuristic that
// pairs the most backend-stalled applications with the least backend-
// stalled ones — a simpler cousin of SYNPA without the regression model,
// in the spirit of the authors' earlier Hy-Sched heuristic [13].
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"
	"log"
	"sort"

	"synpa/synpa"
)

// beBalancer pairs applications by sorting them on their backend-stall
// fraction from the previous quantum and matching opposite ends of the
// ranking (highest with lowest, and so on).
type beBalancer struct{}

// Name implements synpa.Policy.
func (beBalancer) Name() string { return "BE-balancer" }

// Place implements synpa.Policy.
func (beBalancer) Place(st *synpa.QuantumState) synpa.Placement {
	place := make(synpa.Placement, st.NumApps)
	if st.Samples == nil {
		// First quantum: arrival order, like everyone else.
		for i := range place {
			place[i] = i % st.NumCores
		}
		return place
	}

	// Rank apps by backend-stall fraction over the last quantum. The
	// QuantumState exposes raw ARM PMU counter deltas, exactly what the
	// real machine would provide.
	type ranked struct {
		app int
		be  float64
	}
	rs := make([]ranked, st.NumApps)
	for i, c := range st.Samples {
		cycles := float64(c.Get(synpa.CPUCycles))
		be := 0.0
		if cycles > 0 {
			be = float64(c.Get(synpa.StallBackend)) / cycles
		}
		rs[i] = ranked{app: i, be: be}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].be > rs[b].be })

	// Pair opposite ends: most backend-stalled with least backend-stalled.
	core := 0
	for lo, hi := 0, len(rs)-1; lo <= hi; lo, hi = lo+1, hi-1 {
		place[rs[lo].app] = core
		if lo != hi {
			place[rs[hi].app] = core
		}
		core = (core + 1) % st.NumCores
	}
	return place
}

func main() {
	sys, err := synpa.New(synpa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := sys.TrainDefaultModel()
	if err != nil {
		log.Fatal(err)
	}

	// Same adversarial arrival order as the quickstart: Linux pairs
	// same-type applications.
	workload := []string{
		"lbm_r", "mcf", "leela_r", "astar",
		"cactuBSSN_r", "mcf", "leela_r", "mcf_r",
	}
	fmt.Printf("workload: %v\n\n", workload)

	policies := []synpa.Policy{
		sys.LinuxPolicy(),
		beBalancer{},
		sys.SYNPAPolicy(model),
	}
	var linuxTT uint64
	for _, p := range policies {
		rep, err := sys.Run(workload, p)
		if err != nil {
			log.Fatal(err)
		}
		if linuxTT == 0 {
			linuxTT = rep.TurnaroundCycles
		}
		fmt.Printf("%-12s TT=%-9d speedup=%.3f fairness=%.3f IPC=%.3f\n",
			rep.Policy, rep.TurnaroundCycles,
			float64(linuxTT)/float64(rep.TurnaroundCycles),
			rep.Fairness, rep.IPCGeomean)
	}
	fmt.Println("\nthe heuristic recovers part of SYNPA's gain without any model,")
	fmt.Println("but lacks the per-pair degradation prediction and optimal matching")
}
