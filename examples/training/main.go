// Training example: fit the interference model on a user-chosen application
// subset, inspect the coefficients, compare against the paper's published
// Table IV, and contrast the final three-category model with the discarded
// ten-category preliminary model (§VI-A).
//
// The paper notes the model "only needs to be trained once" as long as the
// training set is diverse, but must be retrained for workloads with
// different behaviour (e.g. graph workloads); this example is that
// retraining workflow.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"

	"synpa/synpa"
)

func main() {
	sys, err := synpa.New(synpa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A compact, diverse training set: backend-bound, frontend-bound and
	// intermediate applications.
	apps := []string{
		"mcf", "lbm_r", "milc", "cactuBSSN_r",
		"leela_r", "gobmk", "perlbench",
		"hmmer", "nab_r", "omnetpp_r", "imagick_r", "bzip2",
	}
	fmt.Printf("training set (%d apps): %v\n\n", len(apps), apps)

	model, report, err := sys.TrainModel(apps, synpa.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted on %d SMT pairs, %d aligned quantum samples\n\n", report.Pairs, report.Samples)

	fmt.Println("trained three-category model:")
	printModel(model, report)

	fmt.Println("\npaper Table IV (ThunderX2 hardware) for comparison:")
	paper := synpa.PaperModel()
	for k, name := range paper.Categories {
		c := paper.Coef[k]
		fmt.Printf("  %-22s alpha=%+.4f beta=%+.4f gamma=%+.4f rho=%+.4f MSE=%.4f\n",
			name, c.Alpha, c.Beta, c.Gamma, c.Rho, paper.MSE[k])
	}

	fmt.Println("\nvalidating: running an unseen mixed workload with the trained model")
	workload := []string{
		"lbm_r", "mcf", "leela_r", "astar", // astar was NOT trained on
		"cactuBSSN_r", "mcf", "leela_r", "mcf_r",
	}
	linux, err := sys.Run(workload, sys.LinuxPolicy())
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := sys.Run(workload, sys.SYNPAPolicy(model))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TT speedup over Linux with the retrained model: %.2fx\n",
		float64(linux.TurnaroundCycles)/float64(tuned.TurnaroundCycles))
}

func printModel(m *synpa.Model, rep *synpa.TrainReport) {
	for k, name := range m.Categories {
		c := m.Coef[k]
		fmt.Printf("  %-22s alpha=%+.4f beta=%+.4f gamma=%+.4f rho=%+.4f MSE=%.4f R2=%.3f\n",
			name, c.Alpha, c.Beta, c.Gamma, c.Rho, rep.MSE[k], rep.R2[k])
	}
}
