// Command synpa-train runs the §IV-C training pipeline and prints the
// fitted Table IV-style coefficients and their accuracy, next to the
// paper's published values.
//
// Usage:
//
//	synpa-train                      # train on the 22-app training set
//	synpa-train -apps mcf,lbm_r,...  # train on an explicit set
//	synpa-train -categories 10       # the discarded 10-category model
//	synpa-train -out model.json      # save the model for synpad / /v1/model
//
// -out writes the fitted model in the JSON wire format core.ReadModelJSON
// (and synpad's -model flag and POST /v1/model endpoint) accepts; float64
// coefficients round-trip exactly through JSON, so the reloaded model
// places bit-identically to the freshly trained one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"synpa/internal/apps"
	"synpa/internal/core"
	"synpa/internal/train"
)

func main() {
	var (
		appList    = flag.String("apps", "", "comma-separated application names (default: the 22-app training set)")
		categories = flag.Int("categories", 3, "3 (paper final) or 10 (discarded preliminary)")
		quanta     = flag.Int("pairquanta", 0, "SMT quanta per pair (default from train options)")
		seed       = flag.Uint64("seed", 0, "random seed")
		out        = flag.String("out", "", "write the fitted model as JSON to this path (the synpad model format)")
	)
	flag.Parse()

	models := apps.TrainingSet()
	if *appList != "" {
		models = nil
		for _, name := range strings.Split(*appList, ",") {
			m, err := apps.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "synpa-train:", err)
				os.Exit(1)
			}
			models = append(models, m)
		}
	}

	opts := train.DefaultOptions()
	if *quanta > 0 {
		opts.PairQuanta = *quanta
		if opts.IsolatedQuanta < *quanta {
			opts.IsolatedQuanta = *quanta + 20
		}
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	switch *categories {
	case 3:
	case 10:
		opts.Extract = core.TenCategoryFractions
		opts.Categories = core.TenCategories
	default:
		fmt.Fprintln(os.Stderr, "synpa-train: -categories must be 3 or 10")
		os.Exit(1)
	}

	model, rep, err := train.Train(models, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synpa-train:", err)
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err == nil {
			err = core.WriteModelJSON(f, model)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "synpa-train: -out:", err)
			os.Exit(1)
		}
		fmt.Printf("model written to %s\n", *out)
	}

	fmt.Printf("trained on %d applications, %d SMT pairs, %d aligned samples\n\n",
		rep.Apps, rep.Pairs, rep.Samples)
	fmt.Printf("%-22s %9s %9s %9s %9s %9s %7s\n",
		"Category", "alpha", "beta", "gamma", "rho", "MSE", "R^2")
	for k, name := range model.Categories {
		c := model.Coef[k]
		fmt.Printf("%-22s %9.4f %9.4f %9.4f %9.4f %9.4f %7.3f\n",
			name, c.Alpha, c.Beta, c.Gamma, c.Rho, rep.MSE[k], rep.R2[k])
	}
	if *categories == 3 {
		fmt.Println("\npaper Table IV (ThunderX2 hardware):")
		paper := core.PaperCoefficients()
		for k, name := range paper.Categories {
			c := paper.Coef[k]
			fmt.Printf("%-22s %9.4f %9.4f %9.4f %9.4f %9.4f\n",
				name, c.Alpha, c.Beta, c.Gamma, c.Rho, paper.MSE[k])
		}
	}
}
