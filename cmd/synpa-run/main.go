// Command synpa-run executes one multi-program workload under a chosen
// allocation policy and prints the paper's §VI metrics.
//
// Usage:
//
//	synpa-run -workload fb2 -policy synpa
//	synpa-run -workload fb2 -policy linux
//	synpa-run -apps mcf,leela_r,lbm_r,gobmk -policy both
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"synpa/synpa"
)

func main() {
	var (
		wlName  = flag.String("workload", "fb2", "standard workload name (be0-be4, fe0-fe4, fb0-fb9)")
		appList = flag.String("apps", "", "comma-separated app names (overrides -workload)")
		policy  = flag.String("policy", "both", "linux | synpa | random | both")
		quantum = flag.Uint64("quantum", 20_000, "scheduling quantum in cycles")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := synpa.DefaultConfig()
	cfg.QuantumCycles = *quantum
	cfg.Seed = *seed
	sys, err := synpa.New(cfg)
	if err != nil {
		fatal(err)
	}

	var names []string
	if *appList != "" {
		for _, n := range strings.Split(*appList, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	} else {
		std := sys.StandardWorkloads()
		var ok bool
		if names, ok = std[*wlName]; !ok {
			fatal(fmt.Errorf("unknown workload %q", *wlName))
		}
	}
	fmt.Printf("workload: %s\n\n", strings.Join(names, ", "))

	var model *synpa.Model
	needModel := *policy == "synpa" || *policy == "both"
	if needModel {
		fmt.Println("training interference model (22 apps, all pairs)...")
		m, rep, err := sys.TrainDefaultModel()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained: %d pairs, %d samples\n\n", rep.Pairs, rep.Samples)
		model = m
	}

	var reports []*synpa.RunReport
	run := func(p synpa.Policy) {
		rep, err := sys.Run(names, p)
		if err != nil {
			fatal(err)
		}
		reports = append(reports, rep)
		printReport(rep)
	}
	switch *policy {
	case "linux":
		run(sys.LinuxPolicy())
	case "synpa":
		run(sys.SYNPAPolicy(model))
	case "random":
		run(sys.RandomPolicy(*seed))
	case "both":
		run(sys.LinuxPolicy())
		run(sys.SYNPAPolicy(model))
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	if len(reports) == 2 {
		tt := float64(reports[0].TurnaroundCycles) / float64(reports[1].TurnaroundCycles)
		fmt.Printf("TT speedup of %s over %s: %.3f\n", reports[1].Policy, reports[0].Policy, tt)
		fmt.Printf("fairness: %.3f -> %.3f\n", reports[0].Fairness, reports[1].Fairness)
		fmt.Printf("IPC geomean speedup: %.3f\n", reports[1].IPCGeomean/reports[0].IPCGeomean)
	}
}

func printReport(r *synpa.RunReport) {
	fmt.Printf("--- %s ---\n", r.Policy)
	fmt.Printf("turnaround: %d cycles (%d quanta)\n", r.TurnaroundCycles, r.Quanta)
	fmt.Printf("fairness=%.3f  IPC(geomean)=%.3f  ANTT=%.3f  STP=%.3f\n",
		r.Fairness, r.IPCGeomean, r.ANTT, r.STP)
	for i, a := range r.Apps {
		fmt.Printf("  %02d %-13s TT=%-10d IPC=%.3f speedup=%.3f\n",
			i, a.Name, a.TurnaroundCycles, a.IPC, a.IndividualSpeedup)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "synpa-run:", err)
	os.Exit(1)
}
