// Command synpa-run executes one multi-program workload under a chosen
// allocation policy and prints the paper's §VI metrics.
//
// Usage:
//
//	synpa-run -workload fb2 -policy synpa
//	synpa-run -workload fb2 -policy linux
//	synpa-run -apps mcf,leela_r,lbm_r,gobmk -policy both
//	synpa-run -trace dyn0 -policy both         # built-in dynamic scenario
//	synpa-run -trace jobs.trace -policy synpa  # scripted arrival trace
//	synpa-run -fleet fleet-sat -policy both    # two-level cluster run
//	synpa-run -fleet fleet-hot -dispatch interference -machines 12
//
// A trace file is line-oriented: "<arrive_cycle> <app_name> [work_factor]",
// with # comments. Applications arrive at their cycles, run their finite
// work (work_factor × the reference instruction target) and depart — the
// open-system counterpart of the closed -workload runs.
package main

import (
	"cmp"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"

	"synpa/internal/experiments"
	"synpa/internal/obs"
	"synpa/synpa"
)

func main() {
	var (
		wlName     = flag.String("workload", "fb2", "standard workload name (be0-be4, fe0-fe4, fb0-fb9)")
		appList    = flag.String("apps", "", "comma-separated app names (overrides -workload)")
		trace      = flag.String("trace", "", "dynamic run: built-in scenario (dyn0-dyn4, prio-lo/mid/hi) or trace file path (overrides -workload/-apps)")
		fleetName  = flag.String("fleet", "", "fleet run: built-in cluster scenario (fleet-sat, fleet-imb, fleet-hot) streamed through the two-level scheduler (overrides -workload/-apps/-trace)")
		dispatch   = flag.String("dispatch", "", "fleet dispatch discipline: least-loaded (default) | round-robin | interference")
		machines   = flag.Int("machines", 0, "fleet cluster size (0 = the scenario default)")
		policy     = flag.String("policy", "both", "linux | synpa | random | both")
		admission  = flag.String("admission", "", "dynamic-run admission discipline: fifo (default) | sjf | priority | backfill")
		smt        = flag.Int("smt", 0, "SMT level: hardware threads per core, 1-4 (default: the paper's SMT2 BIOS setting)")
		quantum    = flag.Uint64("quantum", 20_000, "scheduling quantum in cycles")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "worker goroutines stepping cores within each quantum (0 = GOMAXPROCS, 1 = serial; results are bit-identical at any count; SYNPA_WORKERS overrides)")
		sharedCch  = flag.Bool("shared-cache", false, "fleet runs: one fleet-wide concurrent prediction cache instead of per-machine private caches (bit-identical by construction; combine with -fleet)")
		traceOut   = flag.String("trace-out", "", "write the run's event trace to this '[format:]path' (formats: chrome = Perfetto trace-event JSON, jsonl; default by extension). Needs a single policy, not -policy both")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics registry snapshot (counters/histograms, JSON) to this path")
	)
	flag.Parse()

	var traceFormat, tracePath string
	if *traceOut != "" {
		var err error
		if traceFormat, tracePath, err = obs.ParseTraceDest(*traceOut); err != nil {
			fatal(fmt.Errorf("-trace-out: %w", err))
		}
		if *policy == "both" {
			fatal(fmt.Errorf("-trace-out records a single run; pick -policy linux, synpa or random"))
		}
	}

	cfg := synpa.DefaultConfig()
	cfg.SMTLevel = *smt
	cfg.QuantumCycles = *quantum
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Admission = *admission
	var observer *synpa.Observer
	if *traceOut != "" || *metricsOut != "" {
		observer = synpa.NewObserver(0)
		cfg.Obs = observer
	}
	exportObs := func() {
		if observer == nil {
			return
		}
		if tracePath != "" {
			if err := obs.WriteTraceFile(tracePath, traceFormat, observer.Trace); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s (%s, %d events, %d dropped)\n",
				tracePath, traceFormat, len(observer.Trace.Events()), observer.Trace.Dropped())
		}
		if *metricsOut != "" {
			if err := obs.WriteMetricsFile(*metricsOut, observer.Reg); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics written to %s\n", *metricsOut)
		}
	}
	sys, err := synpa.New(cfg)
	if err != nil {
		fatal(err)
	}

	if *fleetName != "" {
		runFleet(sys, *fleetName, *dispatch, *policy, *machines, *quantum, *seed, *sharedCch)
		exportObs()
		return
	}
	if *dispatch != "" || *machines != 0 || *sharedCch {
		fatal(fmt.Errorf("-dispatch, -machines and -shared-cache apply to fleet runs only; combine them with -fleet"))
	}
	if *trace != "" {
		runDynamic(sys, *trace, *policy, *quantum, *seed)
		exportObs()
		return
	}
	if *admission != "" {
		fatal(fmt.Errorf("-admission applies to dynamic and fleet runs only; combine it with -trace or -fleet"))
	}

	var names []string
	if *appList != "" {
		for _, n := range strings.Split(*appList, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	} else {
		std := sys.StandardWorkloads()
		var ok bool
		if names, ok = std[*wlName]; !ok {
			valid := make([]string, 0, len(std))
			for name := range std {
				valid = append(valid, name)
			}
			sort.Strings(valid)
			fatal(fmt.Errorf("unknown workload %q; valid workloads: %s",
				*wlName, strings.Join(valid, ", ")))
		}
	}
	fmt.Printf("workload: %s\n\n", strings.Join(names, ", "))

	var model *synpa.Model
	needModel := *policy == "synpa" || *policy == "both"
	if needModel {
		fmt.Println("training interference model (22 apps, all pairs)...")
		m, rep, err := sys.TrainDefaultModel()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained: %d pairs, %d samples\n\n", rep.Pairs, rep.Samples)
		model = m
	}

	var reports []*synpa.RunReport
	run := func(p synpa.Policy) {
		rep, err := sys.Run(names, p)
		if err != nil {
			fatal(err)
		}
		reports = append(reports, rep)
		printReport(rep)
	}
	switch *policy {
	case "linux":
		run(sys.LinuxPolicy())
	case "synpa":
		run(sys.SYNPAPolicy(model))
	case "random":
		run(sys.RandomPolicy(*seed))
	case "both":
		run(sys.LinuxPolicy())
		run(sys.SYNPAPolicy(model))
	default:
		fatal(fmt.Errorf("unknown policy %q; valid policies: linux, synpa, random, both", *policy))
	}

	if len(reports) == 2 {
		tt := float64(reports[0].TurnaroundCycles) / float64(reports[1].TurnaroundCycles)
		fmt.Printf("TT speedup of %s over %s: %.3f\n", reports[1].Policy, reports[0].Policy, tt)
		fmt.Printf("fairness: %.3f -> %.3f\n", reports[0].Fairness, reports[1].Fairness)
		fmt.Printf("IPC geomean speedup: %.3f\n", reports[1].IPCGeomean/reports[0].IPCGeomean)
	}
	exportObs()
}

// runFleet streams a built-in cluster scenario through the two-level
// scheduler (cluster dispatch over per-machine placement).
func runFleet(sys *synpa.System, scenario, dispatch, policy string, machines int, quantum, seed uint64, sharedCache bool) {
	scenarios := experiments.FleetScenarios(seed, quantum)
	valid := make([]string, len(scenarios))
	var sc *experiments.FleetScenario
	for i := range scenarios {
		valid[i] = scenarios[i].Name
		if scenarios[i].Name == scenario {
			sc = &scenarios[i]
		}
	}
	if sc == nil {
		fatal(fmt.Errorf("unknown fleet scenario %q; valid scenarios: %s",
			scenario, strings.Join(valid, ", ")))
	}
	if dispatch != "" && !slices.Contains(synpa.FleetDispatchers(), dispatch) {
		fatal(fmt.Errorf("unknown dispatch %q; valid dispatchers: %s",
			dispatch, strings.Join(synpa.FleetDispatchers(), ", ")))
	}
	if machines <= 0 {
		machines = sc.Machines
	}
	fmt.Printf("fleet %s: %d machines, %s dispatch\n\n",
		sc.Name, machines, cmp.Or(dispatch, synpa.DispatchLeastLoaded))

	var model *synpa.Model
	if policy == "synpa" || policy == "both" || dispatch == synpa.DispatchInterference {
		fmt.Println("training interference model (22 apps, all pairs)...")
		m, rep, err := sys.TrainDefaultModel()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained: %d pairs, %d samples\n\n", rep.Pairs, rep.Samples)
		model = m
	}

	run := func(newPolicy func(int) synpa.Policy) {
		fc := synpa.FleetConfig{
			Machines:  machines,
			Dispatch:  dispatch,
			Model:     model,
			NewPolicy: newPolicy,
		}
		if sharedCache {
			// A fresh cache per run keeps the Linux/SYNPA comparison fair:
			// neither run starts warm from the other's traffic.
			fc.SharedCache = synpa.NewSharedPredCache(synpa.PredCacheOptions{}, 0)
		}
		rep, err := sys.RunFleet(fc, sc.Stream())
		if err != nil {
			fatal(err)
		}
		printFleetReport(rep)
	}
	switch policy {
	case "linux":
		run(func(int) synpa.Policy { return sys.LinuxPolicy() })
	case "synpa":
		run(func(int) synpa.Policy { return sys.SYNPAPolicy(model) })
	case "random":
		run(func(int) synpa.Policy { return sys.RandomPolicy(seed) })
	case "both":
		run(func(int) synpa.Policy { return sys.LinuxPolicy() })
		run(func(int) synpa.Policy { return sys.SYNPAPolicy(model) })
	default:
		fatal(fmt.Errorf("unknown policy %q; valid policies: linux, synpa, random, both", policy))
	}
}

func printFleetReport(r *synpa.FleetReport) {
	fmt.Printf("--- %s / %s dispatch (admission: %s) ---\n", r.Policy, r.Dispatch, r.Admission)
	fmt.Printf("span: %d cycles (%d slices)  jobs: %d/%d done  deferred: %d  truncated: %v\n",
		r.Cycles, r.Slices, r.Completed, r.Jobs, r.Deferred, r.Truncated)
	fmt.Printf("mean response=%.0f cycles  p95=%.0f  ANTT=%.3f  STP=%.3f  mean live=%.2f\n",
		r.MeanResponseCycles, r.P95ResponseCycles, r.ANTT, r.STP, r.MeanLive)
	fmt.Printf("machine job share: min=%d max=%d (imbalance %.3f)\n",
		r.MinMachineJobs, r.MaxMachineJobs, r.Imbalance)
	if pc := r.PredCache; pc.InvertHits+pc.InvertMisses > 0 {
		scope := "per-machine"
		if pc.Shared {
			scope = "fleet-shared"
		}
		fmt.Printf("predcache (%s): invert %d/%d hits  pair %d/%d hits  resident %d+%d\n",
			scope, pc.InvertHits, pc.InvertHits+pc.InvertMisses,
			pc.PairHits, pc.PairHits+pc.PairMisses, pc.InvertEntries, pc.PairEntries)
	}
	for _, c := range r.PerClass {
		fmt.Printf("  class %d (weight %.1f): %d/%d done  ANTT=%.3f  mean resp=%.0f  p95=%.0f\n",
			c.Priority, c.Weight, c.Completed, c.Jobs, c.ANTT,
			c.MeanResponseCycles, c.P95ResponseCycles)
	}
	if len(r.PerClass) > 0 {
		fmt.Printf("  weighted STP=%.3f\n", r.WeightedSTP)
	}
	fmt.Println()
}

// runDynamic executes an open-system trace under the selected policies.
func runDynamic(sys *synpa.System, traceArg, policy string, quantum, seed uint64) {
	tr, err := loadTrace(traceArg, quantum, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace %s: %d arrivals over %d cycles\n\n",
		tr.Name, len(tr.Entries), tr.Span())

	var model *synpa.Model
	if policy == "synpa" || policy == "both" {
		fmt.Println("training interference model (22 apps, all pairs)...")
		m, rep, err := sys.TrainDefaultModel()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained: %d pairs, %d samples\n\n", rep.Pairs, rep.Samples)
		model = m
	}

	run := func(p synpa.Policy) {
		rep, err := sys.RunDynamic(tr, p)
		if err != nil {
			fatal(err)
		}
		printDynamicReport(rep)
	}
	switch policy {
	case "linux":
		run(sys.LinuxPolicy())
	case "synpa":
		run(sys.SYNPAPolicy(model))
	case "random":
		run(sys.RandomPolicy(seed))
	case "both":
		run(sys.LinuxPolicy())
		run(sys.SYNPAPolicy(model))
	default:
		fatal(fmt.Errorf("unknown policy %q; valid policies: linux, synpa, random, both", policy))
	}
}

// loadTrace resolves -trace: a built-in dynamic scenario name (dyn0–dyn4 or
// the mixed-priority prio-lo/mid/hi set) or a trace file. A file wins over a
// same-named scenario when the argument points at the filesystem — it
// contains a path separator or exists on disk — so a local file named "dyn0"
// stays reachable (say it as ./dyn0 or create it; scenario names resolve
// first only when neither holds).
func loadTrace(arg string, quantum, seed uint64) (synpa.Trace, error) {
	scenarios := experiments.DynamicScenarios(seed, quantum)
	scenarios = append(scenarios, experiments.DynPrioScenarios(seed, quantum)...)
	valid := make([]string, len(scenarios))
	scenarioIdx := -1
	for i, tr := range scenarios {
		valid[i] = tr.Name
		if tr.Name == arg {
			scenarioIdx = i
		}
	}
	pathLike := strings.ContainsRune(arg, os.PathSeparator) || strings.ContainsRune(arg, '/')
	if !pathLike {
		if _, err := os.Stat(arg); err == nil {
			pathLike = true
		}
	}
	if scenarioIdx >= 0 && !pathLike {
		return scenarios[scenarioIdx], nil
	}
	f, err := os.Open(arg)
	if err != nil {
		if scenarioIdx >= 0 {
			return scenarios[scenarioIdx], nil
		}
		return synpa.Trace{}, fmt.Errorf("trace %q is neither a built-in scenario nor a readable file (%v); valid scenarios: %s",
			arg, err, strings.Join(valid, ", "))
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
	return synpa.ParseTrace(name, f)
}

func printDynamicReport(r *synpa.DynamicReport) {
	fmt.Printf("--- %s (admission: %s) ---\n", r.Policy, r.Admission)
	fmt.Printf("span: %d cycles (%d slices)  completed: %d/%d  deferred arrivals: %d\n",
		r.Cycles, r.Slices, r.Completed, len(r.Apps), r.Deferred)
	fmt.Printf("mean response=%.0f cycles  ANTT=%.3f  STP=%.3f  occupancy=%.1f%%\n",
		r.MeanResponseCycles, r.ANTT, r.STP, r.Occupancy*100)
	for _, c := range r.PerClass {
		fmt.Printf("  class %d (weight %.1f): %d/%d done  ANTT=%.3f  mean resp=%.0f  p95=%.0f\n",
			c.Priority, c.Weight, c.Completed, c.Apps, c.ANTT,
			c.MeanResponseCycles, c.P95ResponseCycles)
	}
	if len(r.PerClass) > 0 {
		fmt.Printf("  weighted STP=%.3f\n", r.WeightedSTP)
	}
	for i, a := range r.Apps {
		status := appStatus(a)
		prio := ""
		if a.Priority != 0 {
			prio = fmt.Sprintf(" p%d", a.Priority)
		}
		fmt.Printf("  %02d %-13s%s arrive=%-10d %s\n", i, a.Name, prio, a.ArriveAt, status)
	}
	fmt.Println()
}

// appStatus renders one dynamic app's line-item status. Completion is the
// report's explicit Finished flag, not a zero FinishAt — cycle 0 is a
// legitimate finish stamp, not a sentinel.
func appStatus(a synpa.DynamicAppReport) string {
	switch {
	case !a.Admitted:
		return "never admitted (queued to the end)"
	case !a.Finished:
		return "did not finish"
	}
	return fmt.Sprintf("resp=%-10d norm=%.3f IPC=%.3f", a.ResponseCycles, a.NormalizedResponse, a.IPC)
}

func printReport(r *synpa.RunReport) {
	fmt.Printf("--- %s ---\n", r.Policy)
	fmt.Printf("turnaround: %d cycles (%d quanta)\n", r.TurnaroundCycles, r.Quanta)
	fmt.Printf("fairness=%.3f  IPC(geomean)=%.3f  ANTT=%.3f  STP=%.3f\n",
		r.Fairness, r.IPCGeomean, r.ANTT, r.STP)
	for i, a := range r.Apps {
		fmt.Printf("  %02d %-13s TT=%-10d IPC=%.3f speedup=%.3f\n",
			i, a.Name, a.TurnaroundCycles, a.IPC, a.IndividualSpeedup)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "synpa-run:", err)
	os.Exit(1)
}
