package main

// Regression tests for the CLI's reporting and trace-resolution paths: the
// Finished-flag status line (cycle 0 is a legitimate finish stamp) and the
// file-vs-scenario precedence of loadTrace.

import (
	"os"
	"strings"
	"testing"

	"synpa/synpa"
)

func TestAppStatus(t *testing.T) {
	cases := []struct {
		name string
		app  synpa.DynamicAppReport
		want string
	}{
		{
			name: "never admitted",
			app:  synpa.DynamicAppReport{},
			want: "never admitted",
		},
		{
			name: "admitted but unfinished",
			app:  synpa.DynamicAppReport{Admitted: true},
			want: "did not finish",
		},
		{
			name: "finished",
			app: synpa.DynamicAppReport{
				Admitted: true, Finished: true,
				ResponseCycles: 1234, NormalizedResponse: 1.5, IPC: 2,
			},
			want: "resp=1234",
		},
		{
			// The bug this pins: zero-length work finishing at cycle 0 used
			// to read as "did not finish" under the FinishAt == 0 sentinel.
			name: "finished at cycle zero",
			app: synpa.DynamicAppReport{
				Admitted: true, Finished: true, FinishAt: 0,
			},
			want: "resp=",
		},
		{
			// An unfinished app with a garbage nonzero FinishAt must not
			// read as finished either.
			name: "unfinished with nonzero stamp",
			app:  synpa.DynamicAppReport{Admitted: true, FinishAt: 99},
			want: "did not finish",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := appStatus(tc.app); !strings.Contains(got, tc.want) {
				t.Fatalf("appStatus(%+v) = %q, want it to contain %q", tc.app, got, tc.want)
			}
		})
	}
}

func TestLoadTracePrecedence(t *testing.T) {
	t.Chdir(t.TempDir())
	const quantum, seed = 100_000, 1

	// A scenario name with no file of that name resolves to the built-in.
	tr, err := loadTrace("dyn0", quantum, seed)
	if err != nil {
		t.Fatalf("scenario dyn0: %v", err)
	}
	if tr.Name != "dyn0" || len(tr.Entries) < 2 {
		t.Fatalf("scenario dyn0 resolved to %q with %d entries", tr.Name, len(tr.Entries))
	}
	builtinEntries := len(tr.Entries)

	// The bug this pins: a trace *file* named like a scenario was
	// unreachable — the scenario always shadowed it. A file on disk now
	// wins over the built-in of the same name.
	if err := os.WriteFile("dyn0", []byte("0 mcf\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err = loadTrace("dyn0", quantum, seed)
	if err != nil {
		t.Fatalf("file dyn0: %v", err)
	}
	if len(tr.Entries) != 1 || tr.Entries[0].App != "mcf" {
		t.Fatalf("file dyn0 shadowed by scenario: got %d entries", len(tr.Entries))
	}

	// An explicit path form always means a file.
	tr, err = loadTrace("./dyn0", quantum, seed)
	if err != nil {
		t.Fatalf("./dyn0: %v", err)
	}
	if len(tr.Entries) != 1 {
		t.Fatalf("./dyn0 resolved to %d entries, want the 1-entry file", len(tr.Entries))
	}

	// An explicit path form that doesn't exist is an error — "./dyn0" asks
	// for a file, not the scenario — while the bare name goes back to
	// resolving the built-in once the file is gone.
	if err := os.Remove("dyn0"); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrace("./dyn0", quantum, seed); err == nil {
		t.Fatal("missing ./dyn0 resolved instead of failing")
	}
	tr, err = loadTrace("dyn0", quantum, seed)
	if err != nil {
		t.Fatalf("dyn0 after file removal: %v", err)
	}
	if len(tr.Entries) != builtinEntries {
		t.Fatalf("bare dyn0 resolved to %d entries after file removal, want the %d-entry scenario", len(tr.Entries), builtinEntries)
	}

	// Neither scenario nor file: the error names the valid scenarios.
	if _, err := loadTrace("no-such-trace", quantum, seed); err == nil || !strings.Contains(err.Error(), "dyn0") {
		t.Fatalf("unknown trace: err = %v, want a scenario listing", err)
	}
}
