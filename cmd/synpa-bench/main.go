// Command synpa-bench regenerates the paper's tables and figures on the
// simulated system. Each experiment prints the same rows/series the paper
// reports (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	synpa-bench -experiment all            # everything (slow)
//	synpa-bench -experiment fig5           # one experiment
//	synpa-bench -experiment fig5 -reps 9   # the paper's repetition count
//	synpa-bench -experiment smt4           # SMT2-vs-SMT4 comparison table
//	synpa-bench -experiment dynamic -smt 4 # any experiment at another SMT level
//	synpa-bench -list                      # list experiment names
//
// Performance tracking:
//
//	synpa-bench -experiment all -perfstat auto        # next BENCH_NNNN.json
//	synpa-bench -experiment all -perfstat run.json    # explicit path
//	synpa-bench -experiment all -fastforward=false    # reference engine
//
// The perfstat report records each experiment's wall time and allocation
// churn plus the run configuration, so committed BENCH_*.json files form a
// performance trajectory across PRs.
package main

import (
	"cmp"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	admpkg "synpa/internal/admission"
	"synpa/internal/experiments"
	"synpa/internal/machine"
	"synpa/internal/obs"
	"synpa/internal/perfstat"
)

// runMachineCfg mirrors the suite's per-run machine derivation: when the
// suite fans runs out across CPUs itself, every run's machine is forced
// serial (experiments.Suite.Run), so that is the configuration whose
// effective worker count the BENCH metadata must report.
func runMachineCfg(cfg experiments.Config) machine.Config {
	mc := cfg.Machine
	if cfg.Parallel {
		mc.Parallel = false
	}
	return mc
}

func main() {
	var (
		exp        = flag.String("experiment", "all", "experiment to run (see -list)")
		list       = flag.Bool("list", false, "list available experiments")
		reps       = flag.Int("reps", 0, "repetitions per workload (default: suite default; paper uses 9)")
		smt        = flag.Int("smt", 0, "SMT level: hardware threads per core, 1-4 (default: the paper's SMT2 BIOS setting)")
		quantum    = flag.Uint64("quantum", 0, "scheduling quantum in cycles (default: suite default)")
		refQ       = flag.Int("refquanta", 0, "isolated reference interval in quanta (default: suite default)")
		seed       = flag.Uint64("seed", 0, "random seed (default: suite default)")
		parallel   = flag.Bool("parallel", true, "fan runs out over CPUs")
		admission  = flag.String("admission", "", "open-system admission discipline for the dynamic experiment: fifo (default) | sjf | priority | backfill (dynprio compares all four regardless)")
		workers    = flag.Int("workers", 0, "worker goroutines stepping cores within each run's quanta (0 = GOMAXPROCS, 1 = serial; bit-identical at any count; effective when per-run parallelism is active, e.g. -parallel=false; SYNPA_WORKERS overrides)")
		format     = flag.String("format", "text", "output format: text | json | csv")
		ff         = flag.Bool("fastforward", true, "enable the event-driven core fast-forward engine (observationally equivalent; disable to time the per-cycle reference)")
		perfOut    = flag.String("perfstat", "", "write per-experiment wall-time/alloc JSON to this path ('auto' picks the next BENCH_NNNN.json)")
		fleetM     = flag.Int("fleet-machines", 0, "dynfleet-scale cluster size (0 = 500)")
		fleetJ     = flag.Int("fleet-jobs", 0, "dynfleet-scale stream length (0 = 1,000,000)")
		qpsG       = flag.Int("qps-goroutines", 0, "placement-qps/synpad-qps max concurrent goroutines (0 = 4)")
		qpsP       = flag.Int("qps-passes", 0, "placement-qps/synpad-qps replay passes over the recorded query log (0 = 32 in-process, 8 served)")
		qpsQ       = flag.Int("qps-queries", 0, "placement-qps/synpad-qps recorded-query cap (0 = 256)")
		traceOut   = flag.String("trace-out", "", "write the run's event trace to this '[format:]path' (formats: chrome = Perfetto trace-event JSON, jsonl; default by extension). Needs a single -experiment and forces -parallel=false so the trace stays deterministic")
		metricsOut = flag.String("metrics-out", "", "write the metrics registry snapshot (counters/histograms, JSON) to this path; byte-stable across runs when -parallel=false")
	)
	flag.Parse()

	var traceFormat, tracePath string
	if *traceOut != "" {
		var err error
		if traceFormat, tracePath, err = obs.ParseTraceDest(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "synpa-bench: -trace-out:", err)
			os.Exit(2)
		}
		if *exp == "all" {
			fmt.Fprintln(os.Stderr, "synpa-bench: -trace-out records a single experiment; pick one with -experiment (see -list)")
			os.Exit(2)
		}
	}

	cfg := experiments.DefaultConfig()
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *smt > 0 {
		cfg.Machine.Core.SMTLevel = *smt
		if err := cfg.Machine.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "synpa-bench: -smt %d: %v\n", *smt, err)
			os.Exit(2)
		}
	}
	if *quantum > 0 {
		cfg.Machine.QuantumCycles = *quantum
	}
	if *refQ > 0 {
		cfg.RefQuanta = *refQ
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallel = *parallel
	// Fail fast on a bad discipline instead of minutes into an -experiment
	// all pass (and never record a bogus name in the perfstat metadata).
	if _, err := admpkg.ByName(*admission); err != nil {
		fmt.Fprintf(os.Stderr, "synpa-bench: -admission: %v\n", err)
		os.Exit(2)
	}
	cfg.Admission = *admission
	cfg.Machine.Workers = *workers
	cfg.Machine.FastForward = *ff
	if *perfOut != "" {
		perfstat.EnablePhases(true)
	}
	if *traceOut != "" || *metricsOut != "" {
		// The bench observer shares the global registry, so the metrics
		// snapshot and the BENCH phases view read the same accumulators.
		// Event tracing additionally needs a serial suite: counters commute,
		// trace appends do not.
		o := &obs.Observer{Reg: obs.Global()}
		if *traceOut != "" {
			o.Trace = obs.NewTrace(0)
			cfg.Parallel = false
		}
		cfg.Obs = o
	}
	// cfg.Train.Machine needs no mirroring: Suite.Model always trains on
	// cfg.Machine.
	s := experiments.NewSuite(cfg)

	type experiment struct {
		name string
		run  func() (*experiments.Table, error)
	}
	exps := []experiment{
		{"table1", s.TableI},
		{"table2", s.TableII},
		{"fig2", func() (*experiments.Table, error) { return s.Fig2("mcf") }},
		{"fig4", s.Fig4},
		{"table3", s.TableIII},
		{"table4", s.TableIV},
		{"fig5", s.Fig5},
		{"fig6-be1", func() (*experiments.Table, error) { return s.Fig6("be1") }},
		{"fig6-fe2", func() (*experiments.Table, error) { return s.Fig6("fe2") }},
		{"fig6-fb2", func() (*experiments.Table, error) { return s.Fig6("fb2") }},
		{"table5", s.TableV},
		{"fig7", s.Fig7},
		{"fig8", s.Fig8},
		{"fig9", s.Fig9},
		{"ablation-tencat", s.AblationTenCategory},
		{"ablation-reveals", s.AblationRevealsSplit},
		{"ablation-matcher", s.AblationMatcher},
		{"ablation-inversion", s.AblationInversion},
		{"ablation-quantum", s.AblationQuantum},
		{"overhead-model", s.OverheadModelEquations},
		{"overhead-matching", s.OverheadMatching},
		{"overhead-grouping", s.OverheadGrouping},
		{"dynamic", s.DynamicTable},
		{"dynprio", s.DynPrioTable},
		{"dynfleet", s.DynFleetTable},
		{"dynfleet-scale", func() (*experiments.Table, error) {
			return s.DynFleetScale(experiments.FleetScaleOptions{Machines: *fleetM, Jobs: *fleetJ})
		}},
		{"placement-qps", func() (*experiments.Table, error) {
			return s.PlacementQPSOpt(experiments.PlacementQPSOptions{
				MaxGoroutines: *qpsG, Passes: *qpsP, MaxQueries: *qpsQ,
			})
		}},
		{"synpad-qps", func() (*experiments.Table, error) {
			return s.SynpadQPSOpt(experiments.PlacementQPSOptions{
				MaxGoroutines: *qpsG, Passes: *qpsP, MaxQueries: *qpsQ,
			})
		}},
		{"smt4", s.SMT4Table},
	}

	if *list {
		names := make([]string, len(exps))
		for i, e := range exps {
			names[i] = e.name
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	var collector perfstat.Collector
	// Watch the heap high-water mark across the whole measured run: the
	// fleet's bounded-memory claim (peak O(machines + classes), not
	// O(jobs)) is pinned by the peak_heap_bytes this records.
	var heapWatch *perfstat.HeapWatch
	if *perfOut != "" {
		heapWatch = perfstat.StartHeapWatch(0)
	}
	ran := 0
	for _, e := range exps {
		if *exp != "all" && e.name != *exp {
			continue
		}
		start := time.Now()
		var tab *experiments.Table
		err := collector.Measure(e.name, func() error {
			var err error
			tab, err = e.run()
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "synpa-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		switch *format {
		case "json":
			if err := tab.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "synpa-bench:", err)
				os.Exit(1)
			}
		case "csv":
			if err := tab.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "synpa-bench:", err)
				os.Exit(1)
			}
		default:
			fmt.Printf("# %s (%.1fs)\n%s\n", e.name, time.Since(start).Seconds(), tab)
		}
		ran++
	}
	if ran == 0 {
		names := make([]string, len(exps))
		for i, e := range exps {
			names[i] = e.name
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "synpa-bench: unknown experiment %q\nvalid experiments: all, %s\n",
			*exp, strings.Join(names, ", "))
		os.Exit(1)
	}

	if *traceOut != "" {
		if err := obs.WriteTraceFile(tracePath, traceFormat, cfg.Obs.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "synpa-bench: -trace-out:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "synpa-bench: trace written to %s (%s, %d events, %d dropped)\n",
			tracePath, traceFormat, len(cfg.Obs.Trace.Events()), cfg.Obs.Trace.Dropped())
	}
	if *metricsOut != "" {
		if err := obs.WriteMetricsFile(*metricsOut, obs.Global()); err != nil {
			fmt.Fprintln(os.Stderr, "synpa-bench: -metrics-out:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "synpa-bench: metrics written to %s\n", *metricsOut)
	}

	if *perfOut != "" {
		path := *perfOut
		if path == "auto" {
			var err error
			path, err = perfstat.NextBenchPath(".")
			if err != nil {
				fmt.Fprintln(os.Stderr, "synpa-bench:", err)
				os.Exit(1)
			}
		}
		heap := heapWatch.Stop()
		report := collector.Report(map[string]string{
			"experiment": *exp,
			"smt":        strconv.Itoa(cfg.Machine.ThreadsPerCore()),
			"reps":       strconv.Itoa(cfg.Reps),
			"quantum":    strconv.FormatUint(cfg.Machine.QuantumCycles, 10),
			"ref_quanta": strconv.Itoa(cfg.RefQuanta),
			"seed":       strconv.FormatUint(cfg.Seed, 10),
			// The effective parallelism of this run, so committed
			// BENCH_*.json trajectories stay interpretable: the GOMAXPROCS
			// the process actually had and the worker count the per-run
			// machines actually resolved (the suite forces per-run
			// serialism while it fans runs out itself, exactly as
			// experiments.Suite.Run does).
			"admission":   cmp.Or(cfg.Admission, "fifo"),
			"gomaxprocs":  strconv.Itoa(runtime.GOMAXPROCS(0)),
			"workers":     strconv.Itoa(runMachineCfg(cfg).EffectiveWorkers()),
			"fastforward": strconv.FormatBool(*ff),
			"parallel":    strconv.FormatBool(*parallel),
			// Heap high-water over the measured region: peak live bytes
			// plus total allocation churn. For dynfleet-scale this is the
			// bounded-memory evidence — the peak must track the machine
			// count, never the (orders-of-magnitude larger) job count.
			"peak_heap_bytes": strconv.FormatUint(heap.PeakHeapBytes, 10),
			"alloc_bytes":     strconv.FormatUint(heap.AllocBytes, 10),
			"allocs":          strconv.FormatUint(heap.Allocs, 10),
			"num_gc":          strconv.FormatUint(uint64(heap.NumGC), 10),
		})
		if err := report.WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "synpa-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "synpa-bench: perfstat written to %s (total %.1fs)\n",
			path, report.TotalWallSeconds)
		for _, name := range []string{"policy", "simulation", "matching", "dispatch"} {
			if s, ok := report.Phases[name]; ok {
				fmt.Fprintf(os.Stderr, "synpa-bench: phase %-10s %8.2fs\n", name, s)
			}
		}
	}
}
