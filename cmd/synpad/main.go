// Command synpad is the placement-as-a-service daemon: it loads a trained
// interference model once at startup and answers thread-to-core placement
// queries over HTTP on the reentrant policy path (internal/serve).
//
// Usage:
//
//	synpa-train -out model.json
//	synpad -model model.json                 # serve the trained model
//	synpad -paper -addr 127.0.0.1:8787      # serve the paper's Table IV model
//	synpad -model model.json -shared-cache  # one memo across all requests
//
// Endpoints:
//
//	POST /v1/place        one JSON placement query -> placement + predicted
//	                      per-app degradations
//	POST /v1/place/batch  JSONL stream of queries -> JSONL stream of
//	                      answers, 1:1 and in order
//	POST /v1/model        hot-swap the serving model atomically; in-flight
//	                      requests finish on the old one, none are dropped
//	GET  /v1/stats        serving generation, cache traffic, metrics
//	                      registry snapshot
//	GET  /healthz         liveness + current generation
//
// The daemon announces its bound address on stdout ("synpad: listening on
// ADDR") — with -addr 127.0.0.1:0 that line is how scripts learn the port.
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight requests
// finish, and the process exits when drained or at -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"synpa/internal/core"
	"synpa/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8787", "listen address (port 0 picks a free port; see the stdout announcement)")
		modelPath = flag.String("model", "", "trained model JSON (synpa-train -out); required unless -paper")
		paper     = flag.Bool("paper", false, "serve the paper's published Table IV coefficients instead of a trained model file")
		shared    = flag.Bool("shared-cache", false, "one concurrent prediction memo across all in-flight requests instead of private per-request caches (bit-identical by construction)")
		maxConc   = flag.Int("max-concurrent", 0, "placement requests decided at once before 503 (0 = 4x GOMAXPROCS)")
		maxReq    = flag.Int64("max-request-bytes", 0, "per-request (and per-batch-line) body limit (0 = 1 MiB)")
		maxBatch  = flag.Int64("max-batch-bytes", 0, "whole batch-stream body limit (0 = 64 MiB)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()

	var model *core.Model
	switch {
	case *paper && *modelPath != "":
		fatal(fmt.Errorf("-model and -paper are mutually exclusive"))
	case *paper:
		model = core.PaperCoefficients()
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		model, err = core.ReadModelJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("no model: pass -model model.json (from synpa-train -out) or -paper"))
	}

	srv, err := serve.New(model, serve.Config{
		SharedCache:     *shared,
		MaxConcurrent:   *maxConc,
		MaxRequestBytes: *maxReq,
		MaxBatchBytes:   *maxBatch,
		DrainTimeout:    *drain,
	})
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synpad: listening on %s\n", l.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sigs
		fmt.Println("synpad: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	if err := <-done; err != nil {
		fatal(err)
	}
	fmt.Println("synpad: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "synpad:", err)
	os.Exit(1)
}
