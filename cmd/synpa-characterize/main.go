// Command synpa-characterize reproduces the paper's Fig. 4: the dispatch-
// stage characterization of every application in isolated execution, and
// the Table III grouping derived from it.
//
// Usage:
//
//	synpa-characterize                 # all 28 applications
//	synpa-characterize -app leela_r    # one app, with the Fig. 2 steps
package main

import (
	"flag"
	"fmt"
	"os"

	"synpa/internal/experiments"
)

func main() {
	var (
		app  = flag.String("app", "", "characterize one application with the Fig. 2 three-step detail")
		refQ = flag.Int("refquanta", 100, "isolated run length in quanta")
		seed = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.RefQuanta = *refQ
	cfg.Seed = *seed
	s := experiments.NewSuite(cfg)

	if *app != "" {
		tab, err := s.Fig2(*app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synpa-characterize:", err)
			os.Exit(1)
		}
		fmt.Println(tab)
		return
	}
	for _, run := range []func() (*experiments.Table, error){s.Fig4, s.TableIII} {
		tab, err := run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "synpa-characterize:", err)
			os.Exit(1)
		}
		fmt.Println(tab)
	}
}
