// Command synpa-lint runs the repository's determinism-and-concurrency
// static analysis suite (internal/lint) over the module's packages and
// prints findings as "file:line: rule: message", one per line, exiting
// non-zero when any finding survives suppression.
//
// Usage:
//
//	synpa-lint ./...                      # whole module (the CI job)
//	synpa-lint ./internal/machine         # one package
//	synpa-lint ./internal/...             # a subtree
//	synpa-lint -allow nondet ./...        # skip a rule entirely
//	synpa-lint -rules                     # list the rules and exit
//
// The suite is stdlib-only (go/parser + go/types): it enumerates module
// packages from the filesystem, type-checks them in dependency order,
// and resolves standard-library imports from GOROOT source, so go.mod
// stays dependency-free. Individual findings are suppressed in source
// with "//synpa:lint-allow <rule> <reason>" on the flagged line or the
// line above; -allow disables a whole rule for the invocation.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"synpa/internal/lint"
)

func main() {
	var (
		allow     = flag.String("allow", "", "comma-separated rules to disable for this run")
		listRules = flag.Bool("rules", false, "print the registered rules with their docs and exit")
	)
	flag.Parse()

	if *listRules {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *allow != "" {
		disabled := map[string]bool{}
		for _, name := range strings.Split(*allow, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := lint.ByName(name); !ok {
				fatal(fmt.Errorf("unknown rule %q; valid rules: %s",
					name, strings.Join(lint.Rules(), ", ")))
			}
			disabled[name] = true
		}
		kept := analyzers[:0]
		for _, a := range analyzers {
			if !disabled[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.RunPackage(pkg, analyzers) {
			findings++
			fmt.Println(relDiag(cwd, d.String()))
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "synpa-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// relDiag rewrites the leading absolute file path of a rendered
// diagnostic relative to the working directory, keeping output stable
// and clickable regardless of where the checkout lives.
func relDiag(cwd, line string) string {
	colon := strings.Index(line, ":")
	if colon <= 0 || !filepath.IsAbs(line[:colon]) {
		return line
	}
	rel, err := filepath.Rel(cwd, line[:colon])
	if err != nil {
		return line
	}
	return rel + line[colon:]
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "synpa-lint: %v\n", err)
	os.Exit(2)
}
